"""Storage for collected SERPs.

A full study collects ~140k pages; records are stored compactly (URL
strings are interned, result types packed into bytes) so the whole
30-day dataset fits comfortably in memory, and can be round-tripped to
JSON for offline analysis.
"""

from __future__ import annotations

import gzip
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.parser import ParsedSerp, ResultType

__all__ = ["SerpResult", "SerpRecord", "SerpDataset"]

_TYPE_TO_CODE = {ResultType.NORMAL: 0, ResultType.MAPS: 1, ResultType.NEWS: 2}
_CODE_TO_TYPE = {code: rtype for rtype, code in _TYPE_TO_CODE.items()}


@dataclass(frozen=True)
class SerpResult:
    """One result link (a view over a record's packed storage)."""

    url: str
    result_type: ResultType
    rank: int


@dataclass(frozen=True)
class SerpRecord:
    """One collected page of search results.

    Attributes:
        query: Query text.
        category: Query category value ("local" / "controversial" /
            "politician").
        granularity: Granularity value ("county" / "state" / "national").
        location_name: Qualified region name the page was collected for.
        day: Study day index (0-based, within the query's 5-day block).
        copy_index: 0 for the treatment, 1 for its paired control.
        urls: Result URLs in rank order (interned).
        type_codes: Result types, one byte per URL.
        suggestions: Related-search suggestions from the strip under
            the results.
    """

    query: str
    category: str
    granularity: str
    location_name: str
    day: int
    copy_index: int
    urls: Tuple[str, ...]
    type_codes: bytes
    suggestions: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.urls) != len(self.type_codes):
            raise ValueError("urls and type_codes length mismatch")

    @classmethod
    def from_parsed(
        cls,
        parsed: ParsedSerp,
        *,
        category: str,
        granularity: str,
        location_name: str,
        day: int,
        copy_index: int,
    ) -> "SerpRecord":
        """Build a record from a parsed page."""
        urls = tuple(sys.intern(r.url) for r in parsed.results)
        codes = bytes(_TYPE_TO_CODE[r.result_type] for r in parsed.results)
        return cls(
            query=parsed.query,
            category=category,
            granularity=granularity,
            location_name=location_name,
            day=day,
            copy_index=copy_index,
            urls=urls,
            type_codes=codes,
            suggestions=tuple(sys.intern(s) for s in parsed.suggestions),
        )

    # -- access ---------------------------------------------------------------

    def results(self) -> List[SerpResult]:
        """Expanded result views, rank order."""
        return [
            SerpResult(url=url, result_type=_CODE_TO_TYPE[code], rank=i + 1)
            for i, (url, code) in enumerate(zip(self.urls, self.type_codes))
        ]

    def urls_of_type(self, result_type: Optional[ResultType]) -> List[str]:
        """URLs in rank order, optionally filtered to one result type."""
        if result_type is None:
            return list(self.urls)
        wanted = _TYPE_TO_CODE[result_type]
        return [url for url, code in zip(self.urls, self.type_codes) if code == wanted]

    @property
    def key(self) -> Tuple[str, str, str, int, int]:
        """The unique identity of this record within a dataset."""
        return (self.query, self.granularity, self.location_name, self.day, self.copy_index)

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        raw = {
            "query": self.query,
            "category": self.category,
            "granularity": self.granularity,
            "location": self.location_name,
            "day": self.day,
            "copy": self.copy_index,
            "urls": list(self.urls),
            "types": list(self.type_codes),
        }
        if self.suggestions:
            raw["suggestions"] = list(self.suggestions)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "SerpRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            query=raw["query"],
            category=raw["category"],
            granularity=raw["granularity"],
            location_name=raw["location"],
            day=raw["day"],
            copy_index=raw["copy"],
            urls=tuple(sys.intern(u) for u in raw["urls"]),
            type_codes=bytes(raw["types"]),
            suggestions=tuple(sys.intern(s) for s in raw.get("suggestions", [])),
        )


class SerpDataset:
    """An indexed collection of :class:`SerpRecord`."""

    def __init__(self, records: Optional[Iterable[SerpRecord]] = None):
        self._records: List[SerpRecord] = []
        self._index: Dict[Tuple, SerpRecord] = {}
        for record in records or ():
            self.add(record)

    def add(self, record: SerpRecord) -> None:
        """Add one record; duplicate keys are rejected."""
        if record.key in self._index:
            raise ValueError(f"duplicate record: {record.key}")
        self._records.append(record)
        self._index[record.key] = record

    # -- enumeration ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SerpRecord]:
        return iter(self._records)

    def queries(self, *, category: Optional[str] = None) -> List[str]:
        """Distinct query texts, insertion order, optionally by category."""
        seen: Dict[str, None] = {}
        for record in self._records:
            if category is None or record.category == category:
                seen.setdefault(record.query, None)
        return list(seen)

    def categories(self) -> List[str]:
        """Distinct categories present, insertion order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.category, None)
        return list(seen)

    def granularities(self) -> List[str]:
        """Distinct granularities present, insertion order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.granularity, None)
        return list(seen)

    def locations(self, granularity: str) -> List[str]:
        """Distinct location names at one granularity, insertion order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            if record.granularity == granularity:
                seen.setdefault(record.location_name, None)
        return list(seen)

    def days(self) -> List[int]:
        """Distinct day indices, ascending."""
        return sorted({record.day for record in self._records})

    def copies(self) -> List[int]:
        """Distinct copy indices, ascending."""
        return sorted({record.copy_index for record in self._records})

    def category_of(self, query: str) -> str:
        """The category a query was recorded under."""
        for record in self._records:
            if record.query == query:
                return record.category
        raise KeyError(f"query not in dataset: {query!r}")

    # -- lookup ----------------------------------------------------------------

    def get(
        self,
        query: str,
        granularity: str,
        location_name: str,
        day: int,
        copy_index: int,
    ) -> Optional[SerpRecord]:
        """The record for one (query, granularity, location, day, copy)."""
        return self._index.get((query, granularity, location_name, day, copy_index))

    def filter(
        self,
        *,
        category: Optional[str] = None,
        granularity: Optional[str] = None,
        query: Optional[str] = None,
        day: Optional[int] = None,
    ) -> "SerpDataset":
        """A new dataset with only matching records."""
        return SerpDataset(
            r
            for r in self._records
            if (category is None or r.category == category)
            and (granularity is None or r.granularity == granularity)
            and (query is None or r.query == query)
            and (day is None or r.day == day)
        )

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        """Write the dataset as (optionally gzipped) JSON lines.

        The write is crash-atomic: records go to a temp file in the
        same directory, which is fsynced and then renamed over the
        target (directory fsync included), so a crash mid-save leaves
        either the old file or the new one — never a half-written
        crawl.
        """
        from repro.store.fileops import current_ops

        target = Path(path)
        opener = gzip.open if target.suffix == ".gz" else open
        temp = target.with_name(target.name + ".tmp")
        with opener(temp, "wt", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        with open(temp, "rb") as handle:
            os.fsync(handle.fileno())
        ops = current_ops()
        ops.replace(str(temp), str(target))
        ops.fsync_dir(str(target.parent))

    @classmethod
    def load(cls, path) -> "SerpDataset":
        """Read a dataset written by :meth:`save`.

        Raises:
            ValueError: naming the offending line number on corrupt
                input — a truncated crawl file should fail loudly, not
                load partially.
        """
        source = Path(path)
        opener = gzip.open if source.suffix == ".gz" else open
        dataset = cls()
        with opener(source, "rt", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    dataset.add(SerpRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError) as error:
                    raise ValueError(
                        f"{source}:{line_number}: corrupt record ({error})"
                    ) from error
        return dataset


class IncrementalWriter:
    """Stream records to disk as a crawl collects them.

    A multi-hour crawl should not hold its only copy of the data in
    memory; pass ``IncrementalWriter.write`` as the ``sink`` of
    :meth:`repro.core.runner.Study.run` and every page lands on disk the
    moment it is parsed.  Usable as a context manager.
    """

    def __init__(self, path):
        self.path = Path(path)
        opener = gzip.open if self.path.suffix == ".gz" else open
        self._handle = opener(self.path, "wt", encoding="utf-8")
        self.written = 0

    def write(self, record: SerpRecord) -> None:
        """Append one record."""
        if self._handle is None:
            raise ValueError("writer is closed")
        self._handle.write(json.dumps(record.to_dict()) + "\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "IncrementalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
