"""Figure-data export: CSV / JSON for downstream plotting.

The report layer renders text tables; real users also want the data in
machine-readable form for their own plotting stacks.  Exports cover
every figure, with one row per plotted point, and round-trip through
the standard library's :mod:`csv` / :mod:`json`.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.core.report import StudyReport

__all__ = ["export_figure_csv", "export_figure_json", "export_all"]

_FIGURES = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def _rows_for(report: StudyReport, figure: str) -> List[dict]:
    if figure == "fig2":
        return report.fig2_rows()
    if figure == "fig3":
        return report.fig3_rows()
    if figure == "fig4":
        return report.fig4_rows()
    if figure == "fig5":
        return report.fig5_rows()
    if figure == "fig6":
        return report.fig6_rows()
    if figure == "fig7":
        return report.fig7_rows()
    raise ValueError(f"unknown figure: {figure!r} (expected one of {_FIGURES})")


def export_figure_csv(report: StudyReport, figure: str) -> str:
    """One figure's data as CSV text (header + one row per point)."""
    rows = _rows_for(report, figure)
    if not rows:
        raise ValueError(f"figure {figure!r} produced no rows")
    # Union of keys across rows, first-row order first (fig3/fig6 rows
    # may omit granularities missing from a partial dataset).
    fieldnames: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def export_figure_json(report: StudyReport, figure: str) -> str:
    """One figure's data as a JSON array of row objects."""
    return json.dumps(_rows_for(report, figure), indent=2, sort_keys=True)


def export_all(report: StudyReport, directory, *, fmt: str = "csv") -> List[str]:
    """Write every figure's data into ``directory``.

    Args:
        report: The report to export from.
        directory: Target directory (created if missing).
        fmt: ``"csv"`` or ``"json"``.

    Returns:
        The written file paths, as strings.
    """
    from pathlib import Path

    if fmt not in ("csv", "json"):
        raise ValueError(f"fmt must be 'csv' or 'json', got {fmt!r}")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for figure in _FIGURES:
        exporter = export_figure_csv if fmt == "csv" else export_figure_json
        path = target / f"{figure}.{fmt}"
        path.write_text(exporter(report, figure), encoding="utf-8")
        written.append(str(path))
    # Figure 8 is per-granularity series data; export as JSON always.
    for granularity in report.granularities():
        series = report.fig8_series(granularity)
        payload: Dict[str, object] = {
            "granularity": series.granularity,
            "baseline": series.baseline,
            "days": series.days,
            "noise_floor": series.noise_floor,
            "locations": series.per_location,
        }
        path = target / f"fig8_{granularity}.json"
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        written.append(str(path))
    return written
