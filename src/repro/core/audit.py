"""High-level auditing facade.

``audit_queries`` is the one-call version of the whole methodology for
a downstream user with a list of search terms: it classifies the terms,
runs a paired-control crawl at the chosen granularities, measures the
noise floor, and returns per-term net personalization with significance
— the structured equivalent of ``examples/audit_custom_queries.py``.

This is the *one-shot* entry point.  For a standing audit — the same
study re-run on a rolling schedule with streaming statistics, a durable
cycle journal, drift alerting, and an HTTP/CLI surface — use the
:mod:`repro.audit` service (``repro audit serve``; see
``docs/AUDIT.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.core.personalization import PersonalizationAnalysis
from repro.core.runner import Study
from repro.engine.calibration import EngineCalibration
from repro.engine.classify import QueryClassifier
from repro.queries.model import Query
from repro.stats.hypothesis_tests import MannWhitneyResult, mann_whitney_u

__all__ = ["TermAudit", "AuditReport", "audit_queries"]


@dataclass(frozen=True)
class TermAudit:
    """Per-term audit outcome."""

    query: Query
    noise_edit: float
    personalization_by_granularity: Dict[str, float]  # raw mean edit
    net_by_granularity: Dict[str, float]  # minus the noise floor
    significance: MannWhitneyResult

    @property
    def is_personalized(self) -> bool:
        """Whether location measurably changes this term's results."""
        return (
            self.significance.significant
            and max(self.net_by_granularity.values()) > 1.0
        )


@dataclass(frozen=True)
class AuditReport:
    """The full audit across all terms."""

    terms: List[TermAudit]
    granularities: List[str]

    def personalized_terms(self) -> List[TermAudit]:
        """Terms with measurable location personalization, strongest first."""
        return sorted(
            (t for t in self.terms if t.is_personalized),
            key=lambda t: -max(t.net_by_granularity.values()),
        )

    def unpersonalized_terms(self) -> List[TermAudit]:
        """Terms whose differences are indistinguishable from noise."""
        return [t for t in self.terms if not t.is_personalized]

    def render(self) -> str:
        """A text table of the audit."""
        header = f"{'term':26s} {'class':14s} {'noise':>6s}"
        for granularity in self.granularities:
            header += f" {granularity[:8]:>9s}"
        header += f" {'p-value':>9s} {'verdict':>13s}"
        lines = ["location-personalization audit", header]
        for term in sorted(
            self.terms, key=lambda t: -max(t.net_by_granularity.values())
        ):
            row = (
                f"{term.query.text[:26]:26s} {term.query.category.value:14s} "
                f"{term.noise_edit:6.2f}"
            )
            for granularity in self.granularities:
                row += f" {term.net_by_granularity[granularity]:9.2f}"
            verdict = "PERSONALIZED" if term.is_personalized else "no effect"
            row += f" {term.significance.p_value:9.2e} {verdict:>13s}"
            lines.append(row)
        lines.append(
            "(columns are net edit distance above the per-term noise floor)"
        )
        return "\n".join(lines)


def audit_queries(
    queries: Sequence[Union[str, Query]],
    *,
    seed: int = DEFAULT_STUDY_SEED,
    days: int = 2,
    locations_per_granularity: int = 6,
    calibration: Optional[EngineCalibration] = None,
) -> AuditReport:
    """Audit a list of search terms for location personalization.

    Args:
        queries: Raw strings (classified automatically) or annotated
            :class:`Query` objects.
        seed: Reproducibility seed for the whole audit.
        days: Days of repetition (more days → tighter noise estimates).
        locations_per_granularity: Vantage points per granularity.
        calibration: Engine tunables (testing/ablation hook).

    Returns:
        An :class:`AuditReport` with per-term net personalization and a
        Mann–Whitney significance verdict against the noise
        distribution.

    For recurring audits of the same terms over time (with drift
    alerting on the resulting curves), register an
    :class:`repro.audit.AuditSpec` with the continuous
    :class:`repro.audit.AuditService` instead.
    """
    if not queries:
        raise ValueError("need at least one query to audit")
    classifier = QueryClassifier()
    resolved: List[Query] = [
        q if isinstance(q, Query) else classifier.classify(q) for q in queries
    ]
    config = StudyConfig.small(
        resolved,
        seed=seed,
        days=days,
        locations_per_granularity=locations_per_granularity,
    )
    if calibration is not None:
        config = config.with_overrides(calibration=calibration)
    dataset = Study(config).run()
    analysis = PersonalizationAnalysis(dataset)
    granularities = dataset.granularities()

    terms: List[TermAudit] = []
    for query in resolved:
        category = query.category.value
        noise_cells = {
            g: analysis.noise.per_term(category, g).get(query.text)
            for g in granularities
        }
        personalization_cells = {
            g: analysis.per_term(category, g).get(query.text) for g in granularities
        }
        noise_edit = sum(
            cell.edit.mean for cell in noise_cells.values() if cell is not None
        ) / len(granularities)
        raw = {
            g: cell.edit.mean if cell is not None else 0.0
            for g, cell in personalization_cells.items()
        }
        net = {g: max(0.0, value - noise_edit) for g, value in raw.items()}
        treatment_edits = [
            float(c.edit)
            for g in granularities
            if personalization_cells[g] is not None
            for c in personalization_cells[g].comparisons
        ]
        noise_edits = [
            float(c.edit)
            for g in granularities
            if noise_cells[g] is not None
            for c in noise_cells[g].comparisons
        ]
        terms.append(
            TermAudit(
                query=query,
                noise_edit=noise_edit,
                personalization_by_granularity=raw,
                net_by_granularity=net,
                significance=mann_whitney_u(treatment_edits, noise_edits),
            )
        )
    return AuditReport(terms=terms, granularities=granularities)
