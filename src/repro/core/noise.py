"""Noise analysis (paper §3.1, Figures 2–4).

Noise is whatever differs between a treatment and its paired control —
two identical browsers issuing the same query from the same location at
the same moment.  The paper's headline noise findings:

* local queries are far noisier than controversial/politician queries;
* noise is *uniform across granularities* (it is not location-driven);
* ~25% of local-query noise comes from Maps cards flickering in and
  out; News causes almost none of it (reversed for controversial).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.comparisons import PageComparison, iter_noise_pairs
from repro.core.datastore import SerpDataset
from repro.core.parser import ResultType
from repro.stats.summaries import MeanStd, summarize

__all__ = ["NoiseCell", "NoiseAnalysis"]


class NoiseCell:
    """Noise metrics for one (category, granularity) cell of Fig. 2."""

    def __init__(self, comparisons: List[PageComparison]):
        if not comparisons:
            raise ValueError("no treatment/control pairs in this cell")
        self.comparisons = comparisons
        self.jaccard: MeanStd = summarize(c.jaccard for c in comparisons)
        self.edit: MeanStd = summarize(float(c.edit) for c in comparisons)

    def edit_component(self, result_type: ResultType) -> MeanStd:
        """Mean edit distance attributable to one result type."""
        return summarize(float(c.edit_by_type[result_type]) for c in self.comparisons)

    def type_share(self, result_type: ResultType) -> float:
        """Fraction of all edit operations attributable to one type.

        Computed as total type-filtered changes over total changes,
        matching the paper's "total number of search result changes due
        to Maps, divided by the overall number of changes".
        """
        total = sum(c.edit for c in self.comparisons)
        if total == 0:
            return 0.0
        attributed = sum(c.edit_by_type[result_type] for c in self.comparisons)
        return attributed / total


class NoiseAnalysis:
    """All noise aggregations over one collected dataset."""

    def __init__(self, dataset: SerpDataset):
        self.dataset = dataset
        self._cells: Dict[tuple, NoiseCell] = {}

    def cell(self, category: str, granularity: str) -> NoiseCell:
        """The Fig. 2 cell for one (category, granularity)."""
        key = (category, granularity)
        cached = self._cells.get(key)
        if cached is None:
            cached = NoiseCell(
                list(
                    iter_noise_pairs(
                        self.dataset, category=category, granularity=granularity
                    )
                )
            )
            self._cells[key] = cached
        return cached

    def per_term(
        self, category: str, granularity: str
    ) -> Dict[str, NoiseCell]:
        """Per-query noise cells (Fig. 3's per-term breakdown)."""
        by_query: Dict[str, List[PageComparison]] = {}
        for comparison in iter_noise_pairs(
            self.dataset, category=category, granularity=granularity
        ):
            by_query.setdefault(comparison.query, []).append(comparison)
        return {query: NoiseCell(pairs) for query, pairs in by_query.items()}

    def noise_floor_edit(self, category: str, granularity: str) -> float:
        """Mean edit-distance noise (the black bars of Fig. 5)."""
        return self.cell(category, granularity).edit.mean

    def noise_floor_jaccard(self, category: str, granularity: str) -> float:
        """Mean Jaccard under noise alone."""
        return self.cell(category, granularity).jaccard.mean

    def per_term_type_breakdown(
        self,
        category: str,
        granularity: str,
        *,
        result_type: Optional[ResultType] = None,
    ) -> Dict[str, float]:
        """Per-term mean edit noise, optionally type-filtered (Fig. 4)."""
        cells = self.per_term(category, granularity)
        if result_type is None:
            return {query: cell.edit.mean for query, cell in cells.items()}
        return {
            query: cell.edit_component(result_type).mean
            for query, cell in cells.items()
        }
