"""Crawl-schedule feasibility: is the fleet big enough for lock-step?

The paper's design commits to hard timing: every vantage point issues
the same query at the same moment (lock-step), rounds are 11 minutes
apart, and no machine may trip the engine's per-IP rate limit.  Whether
that is *feasible* depends on fleet size, per-request duration, and the
treatment count — exactly the arithmetic that led the authors to 44
machines.

:func:`simulate_crawl_schedule` walks the same schedule
:class:`~repro.core.runner.Study` executes and models each request
occupying its machine for a real-world duration, reporting per-machine
load, round span (how far the "simultaneous" round actually smears),
rate-limit headroom, and any violations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.experiment import StudyConfig

__all__ = ["MachineLoad", "ScheduleReport", "simulate_crawl_schedule"]


@dataclass(frozen=True)
class MachineLoad:
    """One machine's share of a lock-step round."""

    machine_index: int
    browsers: int
    round_seconds: float  # serial time to issue its browsers' requests
    requests_per_minute: float


@dataclass(frozen=True)
class ScheduleReport:
    """Feasibility analysis of one study configuration."""

    treatments: int
    machines: int
    rounds_per_day: int
    total_requests: int
    crawl_days: int
    round_span_seconds: float
    """How long the busiest machine needs per round — the lock-step
    'simultaneity' smear."""

    peak_requests_per_minute: float
    rate_limit: int
    violations: List[str]

    @property
    def feasible(self) -> bool:
        """No violations: the schedule runs as designed."""
        return not self.violations

    def render(self) -> str:
        """A text summary of the feasibility analysis."""
        lines = [
            "crawl-schedule feasibility",
            f"  treatments/round:    {self.treatments}",
            f"  machines:            {self.machines}",
            f"  rounds/day:          {self.rounds_per_day}",
            f"  total requests:      {self.total_requests}",
            f"  crawl length:        {self.crawl_days} days",
            f"  round span:          {self.round_span_seconds:.0f}s "
            "(lock-step smear on the busiest machine)",
            f"  peak per-IP rate:    {self.peak_requests_per_minute:.1f}/min "
            f"(limit {self.rate_limit}/min)",
        ]
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {violation}" for violation in self.violations)
        else:
            lines.append("  feasible: yes")
        return "\n".join(lines)


def simulate_crawl_schedule(
    config: StudyConfig,
    *,
    request_duration_seconds: float = 6.0,
    max_round_span_seconds: float = 60.0,
) -> ScheduleReport:
    """Analyse whether ``config``'s schedule is executable.

    Args:
        config: The study design to analyse.
        request_duration_seconds: Wall time one PhantomJS-style request
            occupies its machine (page load + render + save).
        max_round_span_seconds: How much lock-step smear is tolerable
            before "same moment in time" stops being credible.
    """
    if request_duration_seconds <= 0:
        raise ValueError("request_duration_seconds must be positive")
    locations = (
        config.state_count + config.county_count + config.district_count
        if config.study_locations is None
        else config.study_locations.total()
    )
    treatments = locations * config.copies_per_location
    machines = config.machine_count

    per_machine = [
        MachineLoad(
            machine_index=index,
            browsers=browsers,
            round_seconds=browsers * request_duration_seconds,
            requests_per_minute=browsers
            * max(1.0, 60.0 / (config.wait_between_queries_minutes * 60.0))
            if config.wait_between_queries_minutes < 1
            else browsers / config.wait_between_queries_minutes,
        )
        for index, browsers in enumerate(_split(treatments, machines))
    ]
    round_span = max(load.round_seconds for load in per_machine)
    busiest = max(load.browsers for load in per_machine)
    # All of a machine's requests for one round land within the span —
    # the peak per-minute rate the engine's limiter sees.
    peak_rate = busiest / max(1.0, round_span / 60.0)

    blocks = math.ceil(len(config.queries) / config.queries_per_day_block)
    rounds_per_day = min(len(config.queries), config.queries_per_day_block)
    crawl_days = blocks * config.days
    total_requests = len(config.queries) * treatments * config.days

    violations: List[str] = []
    if round_span > max_round_span_seconds:
        violations.append(
            f"lock-step round smears over {round_span:.0f}s on the busiest "
            f"machine (max {max_round_span_seconds:.0f}s) — add machines"
        )
    rate_limit = config.calibration.ratelimit_max_per_minute
    if peak_rate > rate_limit:
        violations.append(
            f"peak per-IP rate {peak_rate:.1f}/min exceeds the engine's "
            f"{rate_limit}/min budget — requests will hit CAPTCHAs"
        )
    if round_span > config.wait_between_queries_minutes * 60.0:
        violations.append(
            "a round takes longer than the inter-round wait — the schedule "
            "falls behind immediately"
        )
    return ScheduleReport(
        treatments=treatments,
        machines=machines,
        rounds_per_day=rounds_per_day,
        total_requests=total_requests,
        crawl_days=crawl_days,
        round_span_seconds=round_span,
        peak_requests_per_minute=peak_rate,
        rate_limit=rate_limit,
        violations=violations,
    )


def _split(total: int, buckets: int) -> List[int]:
    """Distribute ``total`` items round-robin over ``buckets``."""
    base = total // buckets
    remainder = total % buckets
    return [base + (1 if index < remainder else 0) for index in range(buckets)]
