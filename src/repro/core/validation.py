"""The GPS-versus-IP validation experiment (paper §2.2, "Validation").

The paper issues identical controversial queries with the *same* GPS
coordinate from 50 PlanetLab machines scattered across the US, and
finds 94% of the received search results identical — evidence the
engine personalizes on the provided GPS fix, not the client IP.

This module runs that experiment against the simulated engine, plus the
inverse control: the same machines with *no* GPS fix, where the engine
falls back to IP geolocation and results diverge by vantage point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.browser import MobileBrowser, Network
from repro.core.metrics import jaccard_index
from repro.core.parser import parse_serp_html
from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import SEARCH_HOSTNAME, DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.coords import LatLon
from repro.geo.cuyahoga import CUYAHOGA_CENTER
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.queries.controversial import controversial_queries
from repro.queries.corpus import QueryCorpus, build_corpus
from repro.queries.model import Query
from repro.seeding import derive_seed
from repro.stats.summaries import MeanStd, summarize
from repro.web.world import WebWorld

__all__ = ["ValidationResult", "run_gps_validation"]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one validation run."""

    machine_count: int
    query_count: int
    identical_page_fraction: float
    """Fraction of page pairs that are exactly identical (same URLs,
    same order)."""

    result_agreement: MeanStd
    """Per-pair fraction of result slots that agree positionally — the
    paper's "94% of the search results ... are identical"."""

    pairwise_jaccard: MeanStd
    """Per-pair Jaccard index (order-insensitive overlap)."""

    per_query_agreement: Dict[str, float]
    """Mean positional agreement per query."""


def _positional_agreement(a: Sequence[str], b: Sequence[str]) -> float:
    """Fraction of aligned result slots carrying the same URL."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / longest


def run_gps_validation(
    seed: int,
    *,
    queries: Optional[List[Query]] = None,
    gps: Optional[LatLon] = CUYAHOGA_CENTER,
    machine_count: int = 50,
    calibration: Optional[EngineCalibration] = None,
) -> ValidationResult:
    """Issue identical queries from many vantage points and compare.

    Args:
        seed: Master seed (world, engine, fleet placement).
        queries: Terms to issue (default: the first 10 controversial
            terms, mirroring the paper's use of controversial queries).
        gps: The spoofed GPS fix shared by every machine; pass ``None``
            to run the *fallback* control where the engine only has each
            machine's IP to go on.
        machine_count: Vantage points (paper: 50 PlanetLab machines).
        calibration: Engine tunables (ablations pass overrides).
    """
    if queries is None:
        queries = controversial_queries()[:10]
    if not queries:
        raise ValueError("need at least one query")
    if machine_count < 2:
        raise ValueError("need at least two machines to compare")

    world = WebWorld(derive_seed(seed, "world"))
    cluster = DatacenterCluster()
    resolver = DNSResolver()
    cluster.install_into(resolver)
    resolver.pin(SEARCH_HOSTNAME, cluster[0].frontend_ip)
    geoip = GeoIPDatabase()
    fleet = MachineFleet.planetlab_fleet(seed, count=machine_count)
    geoip.register_fleet(fleet)
    engine = SearchEngine(
        world,
        cluster,
        geoip,
        corpus=_corpus_with(queries),
        calibration=calibration or EngineCalibration(),
        seed=derive_seed(seed, "engine"),
    )
    network = Network(resolver, engine)

    browsers: List[MobileBrowser] = []
    for index, machine in enumerate(fleet):
        browser = MobileBrowser(
            browser_id=f"validation:{index}", machine=machine, network=network
        )
        if gps is not None:
            browser.geolocation.set(gps)
        browsers.append(browser)

    pages_by_query: Dict[str, List[List[str]]] = {}
    for round_index, query in enumerate(queries):
        timestamp = round_index * 11.0
        pages: List[List[str]] = []
        for browser in browsers:
            crawl = browser.search(query.text, timestamp)
            browser.clear_cookies()
            if not crawl.ok:
                raise RuntimeError("validation crawl was rate-limited")
            pages.append(parse_serp_html(crawl.html).urls())
        pages_by_query[query.text] = pages

    identical = 0
    total_pairs = 0
    agreements: List[float] = []
    jaccards: List[float] = []
    per_query: Dict[str, float] = {}
    for query_text, pages in pages_by_query.items():
        query_agreements: List[float] = []
        for a, b in itertools.combinations(pages, 2):
            total_pairs += 1
            if a == b:
                identical += 1
            agreement = _positional_agreement(a, b)
            agreements.append(agreement)
            query_agreements.append(agreement)
            jaccards.append(jaccard_index(a, b))
        per_query[query_text] = summarize(query_agreements).mean
    return ValidationResult(
        machine_count=machine_count,
        query_count=len(queries),
        identical_page_fraction=identical / total_pairs,
        result_agreement=summarize(agreements),
        pairwise_jaccard=summarize(jaccards),
        per_query_agreement=per_query,
    )


def _corpus_with(queries: List[Query]) -> QueryCorpus:
    """A corpus containing ``queries`` (falling back to the full corpus
    when they are all from it, so classification stays exact)."""
    full = build_corpus()
    known = {q.text for q in full}
    if all(q.text in known for q in queries):
        return full
    return QueryCorpus(queries=list(queries))
