"""CRC32-framed JSONL record logs with a scavenging scanner.

Every durable journal in the system — checkpoint, audit store, wide
events — is a sequence of framed lines::

    ~F1 <length:08x> <crc32:08x> <payload>\\n

The payload is the client's own canonical JSON, byte for byte — the
frame wraps it, never rewrites it, so the byte-identity guarantees the
journals are tested for (same payload bytes across worker counts and
kill/resume) survive the migration with their meaning intact.  ``~``
cannot begin a JSON document, so framed and legacy (unframed) lines
coexist in one file and the scanner reads both; legacy records simply
carry no checksum.

The scanner classifies damage by *position*, which is what separates
the two failure stories a record log can tell:

torn tail
    Invalid bytes after the last valid record — the write in flight
    when the process died.  Expected, benign, recoverable: loaders
    truncate it and resume.

interior corruption
    An invalid region strictly *before* a later valid record.  No
    crash writes in the middle of a file; this is bit rot, a lying
    disk, or an editor.  Readers raise :class:`StoreCorruption` naming
    the segment, byte offset, and record index — never a silent skip —
    and ``repro fsck --repair`` is the explicit, logged way to
    scavenge around it.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.store.fileops import current_ops

__all__ = [
    "FRAME_PREFIX",
    "InvalidRegion",
    "RecordLogWriter",
    "ScanReport",
    "ScannedRecord",
    "STORE_STATS",
    "StoreCorruption",
    "StoreStats",
    "frame_record",
    "read_log",
    "reframe_line",
    "scan_bytes",
    "scan_log",
    "segment_paths",
    "set_recovery_hook",
    "unframe_line",
]

FRAME_PREFIX = b"~F1 "
#: ``~F1 `` + 8 hex length + space + 8 hex crc + space.
_HEADER_LEN = len(FRAME_PREFIX) + 8 + 1 + 8 + 1
_HEX = frozenset(b"0123456789abcdef")
_SEGMENT_RE = re.compile(r"\.seg(\d{6})$")


def frame_record(payload: bytes) -> bytes:
    """Wrap one canonical-JSON payload in a checksummed frame line."""
    if b"\n" in payload:
        raise ValueError("record payloads must be single lines")
    return b"~F1 %08x %08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def unframe_line(line: Union[str, bytes]) -> str:
    """The payload of a framed line; legacy lines pass through unchanged.

    A text-level helper for tools (and tests) that edit journal lines:
    ``json.loads(unframe_line(line))`` works on framed and legacy files
    alike.  The frame's checksum is *not* verified here — that is the
    scanner's job.
    """
    text = line.decode("utf-8") if isinstance(line, bytes) else line
    stripped = text.rstrip("\n")
    if stripped.encode("utf-8").startswith(FRAME_PREFIX):
        return stripped[_HEADER_LEN:]
    return stripped


def reframe_line(payload: str) -> str:
    """Frame one payload string as a text line (no trailing newline)."""
    return frame_record(payload.encode("utf-8")).decode("utf-8")[:-1]


class StoreCorruption(RuntimeError):
    """Interior corruption in a record log: damage before valid data.

    Carries the forensic coordinates ``repro fsck`` reports: which
    segment file, the byte offset of the damaged region, how many
    valid records preceded it, and why the bytes were rejected.
    """

    def __init__(
        self, path: str, *, segment: str, offset: int, record_index: int, reason: str
    ):
        super().__init__(
            f"{path}: corrupt record after record {record_index} at byte "
            f"{offset} of segment {segment}: {reason} (run `repro fsck` to "
            "inspect, `--repair` to scavenge)"
        )
        self.path = path
        self.segment = segment
        self.offset = offset
        self.record_index = record_index
        self.reason = reason


@dataclass
class ScannedRecord:
    """One valid record: its parsed payload and exact byte extent."""

    obj: dict
    payload: bytes
    start: int
    end: int
    framed: bool
    line: bytes
    """The full original line bytes — what a byte-preserving repair keeps."""


@dataclass
class InvalidRegion:
    """One contiguous run of bytes the scanner rejected."""

    start: int
    end: int
    reason: str
    record_index: int
    """How many valid records precede the region."""

    def to_dict(self) -> dict:
        return {
            "offset": self.start,
            "bytes": self.end - self.start,
            "record_index": self.record_index,
            "reason": self.reason,
        }


@dataclass
class ScanReport:
    """Everything the scanner learned about one log file."""

    path: Optional[str]
    size: int
    records: List[ScannedRecord] = field(default_factory=list)
    corrupt: List[InvalidRegion] = field(default_factory=list)
    torn: Optional[InvalidRegion] = None
    legacy_records: int = 0

    @property
    def durable_end(self) -> int:
        """Byte offset just past the last valid record (0 if none)."""
        return self.records[-1].end if self.records else 0

    @property
    def clean(self) -> bool:
        return not self.corrupt and self.torn is None


def _validate_line(line: bytes, start: int) -> Tuple[Optional[ScannedRecord], str]:
    """Parse one newline-terminated line; (record, "") or (None, reason)."""
    end = start + len(line)
    if line.startswith(FRAME_PREFIX):
        if len(line) < _HEADER_LEN + 1:
            return None, "framed line shorter than its header"
        length_hex = line[len(FRAME_PREFIX) : len(FRAME_PREFIX) + 8]
        crc_hex = line[len(FRAME_PREFIX) + 9 : len(FRAME_PREFIX) + 17]
        if (
            not _HEX.issuperset(length_hex)
            or not _HEX.issuperset(crc_hex)
            or line[len(FRAME_PREFIX) + 8 : len(FRAME_PREFIX) + 9] != b" "
            or line[_HEADER_LEN - 1 : _HEADER_LEN] != b" "
        ):
            return None, "malformed frame header"
        payload = line[_HEADER_LEN:-1]
        if len(payload) != int(length_hex, 16):
            return None, (
                f"frame declares {int(length_hex, 16)} payload bytes, "
                f"line carries {len(payload)}"
            )
        if zlib.crc32(payload) != int(crc_hex, 16):
            return None, "checksum mismatch"
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "checksum valid but payload is not JSON"
        if not isinstance(obj, dict):
            return None, "payload is not a JSON object"
        return ScannedRecord(obj, payload, start, end, True, line), ""
    payload = line[:-1]
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, "neither a framed record nor legacy JSON"
    if not isinstance(obj, dict):
        return None, "legacy line is not a JSON object"
    return ScannedRecord(obj, payload, start, end, False, line), ""


def scan_bytes(data: bytes, *, path: Optional[str] = None) -> ScanReport:
    """Scan one log's bytes, classifying every record and damaged region."""
    report = ScanReport(path=path, size=len(data))
    invalid: List[InvalidRegion] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            invalid.append(
                InvalidRegion(offset, len(data), "unterminated line", 0)
            )
            break
        line = data[offset : newline + 1]
        if line.strip() == b"":
            offset = newline + 1
            continue  # writers never emit blank lines; ignore them
        record, reason = _validate_line(line, offset)
        if record is not None:
            report.records.append(record)
            if not record.framed:
                report.legacy_records += 1
        else:
            invalid.append(InvalidRegion(offset, newline + 1, reason, 0))
        offset = newline + 1
    durable_end = report.durable_end
    for region in invalid:
        region.record_index = sum(
            1 for record in report.records if record.end <= region.start
        )
        if region.start >= durable_end:
            if report.torn is None:
                report.torn = InvalidRegion(
                    region.start, report.size, region.reason, region.record_index
                )
        else:
            report.corrupt.append(region)
    return report


def scan_log(path) -> ScanReport:
    """Read-only scan of one log file (no truncation, no repair)."""
    with open(path, "rb") as handle:
        data = handle.read()
    return scan_bytes(data, path=str(path))


def segment_paths(path) -> List[str]:
    """Every file of a possibly-rotated log: rotated segments, then active."""
    path = str(path)
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    segments = []
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            if name.startswith(base + ".seg") and _SEGMENT_RE.search(name):
                segments.append(os.path.join(directory, name))
    segments.sort()
    if os.path.exists(path) or not segments:
        segments.append(path)
    return segments


# -- recovery accounting ------------------------------------------------------


@dataclass
class StoreStats:
    """Process-wide recovery counters (see ``build_store_registry``)."""

    torn_tails_recovered: int = 0
    torn_bytes_dropped: int = 0
    legacy_records: int = 0
    corrupt_records_detected: int = 0
    records_scavenged: int = 0
    repairs: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        return dict(sorted(vars(self).items()))


#: Shared recovery ledger every scavenging loader increments.
STORE_STATS = StoreStats()

_recovery_hook: Optional[Callable[[dict], None]] = None


def set_recovery_hook(hook: Optional[Callable[[dict], None]]) -> None:
    """Install a callback for recovery events (``repro fsck`` wires this
    to the wide-event stream; ``None`` uninstalls)."""
    global _recovery_hook
    _recovery_hook = hook


def _emit_recovery(op: str, **fields) -> None:
    if _recovery_hook is not None:
        _recovery_hook({"op": op, **fields})


def read_log(path) -> List[Tuple[dict, int]]:
    """The durable records of one log: ``(payload, end_offset)`` pairs.

    Torn tails are tolerated (counted, dropped from the result, file
    left untouched — truncation is the opening writer's decision).
    Interior corruption raises :class:`StoreCorruption`.
    """
    report = scan_log(path)
    if report.corrupt:
        first = report.corrupt[0]
        STORE_STATS.corrupt_records_detected += len(report.corrupt)
        _emit_recovery(
            "corruption-detected",
            path=str(path),
            offset=first.start,
            record_index=first.record_index,
            reason=first.reason,
        )
        raise StoreCorruption(
            str(path),
            segment=os.path.basename(str(path)),
            offset=first.start,
            record_index=first.record_index,
            reason=first.reason,
        )
    if report.torn is not None:
        STORE_STATS.torn_tails_recovered += 1
        STORE_STATS.torn_bytes_dropped += report.size - report.durable_end
        _emit_recovery(
            "torn-tail",
            path=str(path),
            offset=report.durable_end,
            bytes=report.size - report.durable_end,
        )
    STORE_STATS.legacy_records += report.legacy_records
    return [(record.obj, record.end) for record in report.records]


# -- writing ------------------------------------------------------------------


class RecordLogWriter:
    """Appends framed records to a (possibly rotating) log file.

    All file traffic goes through the :mod:`repro.store.fileops` seam,
    so a :class:`~repro.store.faults.FaultyFileOps` installed with
    :func:`~repro.store.fileops.use_fileops` faults every journal in
    the process.  ``segment_bytes`` turns on rotation: when the active
    file would outgrow the limit, it is renamed to the next
    ``<path>.segNNNNNN`` (atomic replace + directory fsync) and a fresh
    active file is started; :func:`segment_paths` enumerates the set.
    """

    def __init__(self, path, handle, ops, *, segment_bytes=None, size=0):
        self.path = str(path)
        self._handle = handle
        self._ops = ops
        self._segment_bytes = segment_bytes
        self._size = size

    @classmethod
    def create(cls, path, *, ops=None, segment_bytes=None, fsync_directory=True):
        """Start a fresh log (truncating any existing active file).

        With ``fsync_directory`` (the default for journals that must
        survive crashes) the parent directory is fsynced so the new
        file's *name* is durable, not just its bytes.
        """
        ops = ops or current_ops()
        handle = ops.open_trunc(path)
        if fsync_directory:
            ops.fsync_dir(os.path.dirname(str(path)))
        return cls(path, handle, ops, segment_bytes=segment_bytes)

    @classmethod
    def append_to(cls, path, *, ops=None, segment_bytes=None):
        """Reopen an existing (already scavenged) log for appending."""
        ops = ops or current_ops()
        size = os.path.getsize(path) if os.path.exists(path) else 0
        return cls(path, ops.open_append(path), ops, segment_bytes=segment_bytes,
                   size=size)

    def append(self, text: str) -> None:
        """Frame and append one canonical-JSON payload string."""
        data = frame_record(text.encode("utf-8"))
        self._rotate_if_needed(len(data))
        self._ops.write(self._handle, data)
        self._size += len(data)

    def flush(self) -> None:
        self._ops.flush(self._handle)

    def commit(self) -> None:
        """Flush and fsync: appended records are durable on return."""
        self._ops.fsync(self._handle)

    def close(self) -> None:
        if self._handle is not None:
            self._ops.flush(self._handle)
            self._ops.close(self._handle)
            self._handle = None

    def _rotate_if_needed(self, incoming: int) -> None:
        if (
            self._segment_bytes is None
            or self._size == 0
            or self._size + incoming <= self._segment_bytes
        ):
            return
        self.commit()
        self._ops.close(self._handle)
        existing = [p for p in segment_paths(self.path) if p != self.path]
        segment = f"{self.path}.seg{len(existing):06d}"
        self._ops.replace(self.path, segment)
        self._ops.fsync_dir(os.path.dirname(self.path))
        self._handle = self._ops.open_trunc(self.path)
        self._size = 0
