"""Offline integrity checking and scavenge repair for record logs.

``repro fsck <path>`` scans every segment of a log (rotated segments
plus the active file), classifies torn tails and interior corruption,
and — with ``--repair`` — scavenges each damaged segment: every valid
record is preserved **byte for byte** (framed or legacy) into a
recovered file that atomically replaces the original, with the parent
directory fsynced so the repair itself survives a crash.  Exit code 1
means interior corruption was found and left in place; after a repair
the log is clean and the exit code is 0.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.store.fileops import FileOps, current_ops
from repro.store.record_log import (
    STORE_STATS,
    ScanReport,
    _emit_recovery,
    scan_log,
    segment_paths,
)

__all__ = ["FsckReport", "SegmentReport", "build_store_registry", "fsck_path"]


@dataclass
class SegmentReport:
    """What the scanner found in one segment file."""

    segment: str
    size: int
    records: int
    legacy_records: int
    durable_end: int
    corrupt: List[dict] = field(default_factory=list)
    torn: Optional[dict] = None
    repaired: bool = False
    scavenged_records: int = 0
    dropped_bytes: int = 0

    @classmethod
    def from_scan(cls, report: ScanReport) -> "SegmentReport":
        return cls(
            segment=os.path.basename(report.path or ""),
            size=report.size,
            records=len(report.records),
            legacy_records=report.legacy_records,
            durable_end=report.durable_end,
            corrupt=[region.to_dict() for region in report.corrupt],
            torn=report.torn.to_dict() if report.torn is not None else None,
        )

    def to_dict(self) -> dict:
        return {
            "segment": self.segment,
            "size": self.size,
            "records": self.records,
            "legacy_records": self.legacy_records,
            "durable_end": self.durable_end,
            "corrupt": self.corrupt,
            "torn": self.torn,
            "repaired": self.repaired,
            "scavenged_records": self.scavenged_records,
            "dropped_bytes": self.dropped_bytes,
        }


@dataclass
class FsckReport:
    """The full verdict over every segment of one log."""

    path: str
    segments: List[SegmentReport] = field(default_factory=list)
    repaired: bool = False

    @property
    def records(self) -> int:
        return sum(segment.records for segment in self.segments)

    @property
    def corrupt_records(self) -> int:
        return sum(len(segment.corrupt) for segment in self.segments)

    @property
    def torn_segments(self) -> int:
        return sum(1 for segment in self.segments if segment.torn is not None)

    @property
    def truncated(self) -> bool:
        return self.torn_segments > 0

    @property
    def exit_code(self) -> int:
        """1 when interior corruption remains in place, else 0.

        Torn tails are not an error — they are the normal residue of a
        crash, and every loader scavenges them on open.
        """
        return 1 if self.corrupt_records > 0 and not self.repaired else 0

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "records": self.records,
            "corrupt_records": self.corrupt_records,
            "torn_segments": self.torn_segments,
            "truncated": self.truncated,
            "repaired": self.repaired,
            "exit_code": self.exit_code,
            "segments": [segment.to_dict() for segment in self.segments],
        }


def fsck_path(path, *, repair: bool = False, ops: Optional[FileOps] = None):
    """Scan (and optionally scavenge-repair) every segment of one log.

    Repair rewrites only damaged segments: valid records are copied
    byte-for-byte into ``<segment>.recovered``, which atomically
    replaces the segment (fsync, replace, directory fsync).  Torn
    bytes and corrupt regions are dropped — and counted, per segment,
    in the returned report; nothing disappears without a ledger entry.
    """
    ops = ops or current_ops()
    report = FsckReport(path=str(path))
    for segment_file in segment_paths(path):
        if not os.path.exists(segment_file):
            continue
        scan = scan_log(segment_file)
        segment = SegmentReport.from_scan(scan)
        if repair and (scan.corrupt or scan.torn is not None):
            _scavenge(segment_file, scan, ops)
            segment.repaired = True
            segment.scavenged_records = len(scan.records)
            segment.dropped_bytes = scan.size - sum(
                len(record.line) for record in scan.records
            )
            report.repaired = True
            STORE_STATS.repairs += 1
            STORE_STATS.records_scavenged += len(scan.records)
            if scan.corrupt:
                STORE_STATS.corrupt_records_detected += len(scan.corrupt)
            _emit_recovery(
                "repair",
                path=str(segment_file),
                scavenged=len(scan.records),
                dropped_bytes=segment.dropped_bytes,
                corrupt=len(scan.corrupt),
            )
        report.segments.append(segment)
    return report


def _scavenge(segment_file: str, scan: ScanReport, ops: FileOps) -> None:
    recovered = str(segment_file) + ".recovered"
    handle = ops.open_trunc(recovered)
    for record in scan.records:
        ops.write(handle, record.line)
    ops.fsync(handle)
    ops.close(handle)
    ops.replace(recovered, segment_file)
    ops.fsync_dir(os.path.dirname(str(segment_file)))


def build_store_registry(*, disk_stats=None):
    """A metrics registry exposing the recovery and fault ledgers.

    Deliberately separate from ``build_study_registry``: study-registry
    snapshots are part of the kill/resume byte-identity contract, and
    recovery counts legitimately differ between an interrupted run and
    an uninterrupted one.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for name in sorted(vars(STORE_STATS)):
        registry.register_counter(
            f"repro_store_{name}",
            STORE_STATS,
            name,
            help=f"repro.store recovery counter: {name.replace('_', ' ')}",
        )
    if disk_stats is not None:
        registry.register_counter(
            "repro_store_disk_crashes",
            disk_stats,
            "crashes",
            help="simulated crashes under DiskFaultPlan",
        )
        registry.register_labeled(
            "repro_store_disk_faults_injected",
            disk_stats,
            "injected",
            label="kind",
            help="injected disk faults by kind",
        )
    return registry
