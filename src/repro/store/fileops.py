"""The swappable file-operation seam under every durable writer.

Durable writers never touch ``open``/``os.fsync``/``os.replace``
directly; they go through the process-wide :class:`FileOps` instance
returned by :func:`current_ops`.  In production that is
:data:`REAL_OPS` — thin wrappers over the real syscalls, including the
parent-directory fsync POSIX requires before a freshly created file's
*name* (not just its bytes) is guaranteed to survive a crash.  Under
test, :func:`use_fileops` swaps in a
:class:`~repro.store.faults.FaultyFileOps` that injects disk faults
and models crash consistency, so the same writer code can be proven
correct against torn writes, dropped fsyncs, and lost renames.

The seam is deliberately narrow — append/truncating opens, byte
writes, flush/fsync, atomic replace, directory fsync, truncate.
*Reads* are not routed through it: injected corruption is written to
the real file, so readers (and ``repro fsck``) face it exactly where a
real disk would put it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["FileHandle", "FileOps", "REAL_OPS", "current_ops", "use_fileops"]


class FileHandle:
    """An open file tracked by the :class:`FileOps` that produced it."""

    __slots__ = ("path", "raw", "stream_crc")

    def __init__(self, path, raw):
        self.path = str(path)
        self.raw = raw
        #: Rolling CRC32 of every byte the *writer intended* to write
        #: through this handle — the content-derived nonce fault gates
        #: key on (see :meth:`DiskFaultPlan.fsync_dropped`).
        self.stream_crc = 0


class FileOps:
    """Real file operations; the default implementation of the seam."""

    def open_append(self, path) -> FileHandle:
        """Open ``path`` for appending, creating it if absent."""
        return FileHandle(path, open(path, "ab"))

    def open_trunc(self, path) -> FileHandle:
        """Open ``path`` for writing, truncating any existing content."""
        return FileHandle(path, open(path, "wb"))

    def write(self, handle: FileHandle, data: bytes) -> None:
        handle.raw.write(data)

    def flush(self, handle: FileHandle) -> None:
        handle.raw.flush()

    def fsync(self, handle: FileHandle) -> None:
        """Flush and fsync: the bytes are durable when this returns."""
        handle.raw.flush()
        os.fsync(handle.raw.fileno())

    def close(self, handle: FileHandle) -> None:
        if handle.raw is not None:
            handle.raw.close()
            handle.raw = None

    def replace(self, src, dst) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def fsync_dir(self, dirpath) -> None:
        """Fsync a directory so entry creations/renames survive a crash."""
        try:
            fd = os.open(dirpath or ".", os.O_RDONLY)
        except OSError:
            return  # platforms that refuse directory opens
        try:
            os.fsync(fd)
        except OSError:
            pass  # some filesystems reject directory fsync; best effort
        finally:
            os.close(fd)

    def truncate(self, path, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)


#: The production seam: real syscalls, no faults.
REAL_OPS = FileOps()

_current: FileOps = REAL_OPS


def current_ops() -> FileOps:
    """The process-wide file-operation seam durable writers use."""
    return _current


@contextmanager
def use_fileops(ops: FileOps) -> Iterator[FileOps]:
    """Swap the seam for the duration of a ``with`` block (tests/chaos)."""
    global _current
    previous = _current
    _current = ops
    try:
        yield ops
    finally:
        _current = previous
