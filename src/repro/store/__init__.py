"""repro.store — the durable record-log layer under every journal.

One framing, one crash model, one fault injector for every file the
system promises to get back after a crash: the crawl checkpoint
(:mod:`repro.faults.checkpoint`), the audit store
(:mod:`repro.audit.store`), and the wide-event log
(:mod:`repro.obs.events`) all write CRC32-framed JSONL through this
package's :class:`RecordLogWriter`, and all recover through its
scavenging scanner, which tells a *torn tail* (the write in flight at
death — truncate and resume) from *interior corruption* (bit rot or a
misdirected write strictly before later valid data — a structured
:class:`StoreCorruption`, never a silent skip).

Durability is exercised, not assumed: :class:`DiskFaultPlan` injects
torn writes, bit flips, ENOSPC, dropped fsyncs, and lost renames
through the swappable :class:`FileOps` seam, deterministically keyed
the same way :class:`~repro.faults.plan.FaultPlan` keys network chaos.
:func:`fsck_path` is the offline half: scan, classify, and — with
``repair`` — scavenge every valid record into a clean file.
"""

from repro.store.fileops import FileHandle, FileOps, REAL_OPS, current_ops, use_fileops
from repro.store.faults import (
    DISK_NAMED_PLANS,
    DiskFault,
    DiskFaultKind,
    DiskFaultPlan,
    DiskFaultStats,
    FaultyFileOps,
)
from repro.store.record_log import (
    FRAME_PREFIX,
    RecordLogWriter,
    ScanReport,
    STORE_STATS,
    StoreCorruption,
    StoreStats,
    frame_record,
    read_log,
    reframe_line,
    scan_bytes,
    scan_log,
    segment_paths,
    set_recovery_hook,
    unframe_line,
)
from repro.store.fsck import FsckReport, build_store_registry, fsck_path

__all__ = [
    "DISK_NAMED_PLANS",
    "DiskFault",
    "DiskFaultKind",
    "DiskFaultPlan",
    "DiskFaultStats",
    "FaultyFileOps",
    "FileHandle",
    "FileOps",
    "FRAME_PREFIX",
    "FsckReport",
    "REAL_OPS",
    "RecordLogWriter",
    "ScanReport",
    "STORE_STATS",
    "StoreCorruption",
    "StoreStats",
    "build_store_registry",
    "current_ops",
    "frame_record",
    "fsck_path",
    "read_log",
    "reframe_line",
    "scan_bytes",
    "scan_log",
    "segment_paths",
    "set_recovery_hook",
    "unframe_line",
    "use_fileops",
]
