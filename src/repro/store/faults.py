"""Deterministic disk-fault injection under the file-ops seam.

The fault-injection methodology :mod:`repro.faults.plan` applies to
the network is applied here below the process boundary, to the disk
itself.  A :class:`DiskFaultPlan` is a seeded schedule of filesystem
misbehaviour; :class:`FaultyFileOps` wires it into the
:class:`~repro.store.fileops.FileOps` seam and keeps a *durability
shadow* — the crash-consistency model POSIX actually offers — so
:meth:`FaultyFileOps.simulate_crash` can answer the only question that
matters: *what is on the disk after the power comes back?*

Determinism works exactly as in :class:`~repro.faults.plan.FaultPlan`:
every gate is a pure function of the plan seed and a **nonce** derived
from the bytes being written (``crc32`` of the buffer, or of the
cumulative handle stream for fsyncs).  Content-keyed nonces make the
schedule independent of how writers interleave — the same record draws
the same fault whether the study runs sequentially, sharded, or
resumed.  Gates are additionally keyed on the crash **generation**
(incremented by each simulated crash) so a restarted process that
rewrites identical bytes re-rolls the dice instead of dying on the
same record forever — the same ``(nonce, generation)`` trick
:meth:`FaultPlan.worker_fault` uses for respawned workers.

Fault vocabulary (at most one per write, first gate wins):

``enospc``
    The write fails cleanly before any byte lands (disk full).
``torn-write``
    Only a prefix of the buffer reaches the platter and the process
    dies mid-write — the canonical source of torn tails.
``bit-flip``
    One bit of the buffer is flipped on its way to disk and the write
    *succeeds silently* — the corruption CRC framing exists to catch.
``fsync-dropped``
    ``fsync`` returns success without making the data durable
    (firmware lies); only a later crash reveals the loss.
``rename-lost``
    ``os.replace`` succeeds in the page cache but the directory update
    is lost if the process crashes before the directory is fsynced.
"""

from __future__ import annotations

import enum
import os
import zlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Set

from repro.seeding import stable_unit
from repro.store.fileops import FileHandle, FileOps, REAL_OPS

__all__ = [
    "DISK_NAMED_PLANS",
    "DiskFault",
    "DiskFaultKind",
    "DiskFaultPlan",
    "DiskFaultStats",
    "FaultyFileOps",
]


class DiskFaultKind(enum.Enum):
    """One thing the injector can do to a file operation."""

    TORN_WRITE = "torn-write"
    BIT_FLIP = "bit-flip"
    ENOSPC = "enospc"
    FSYNC_DROP = "fsync-dropped"
    RENAME_LOST = "rename-lost"


class DiskFault(OSError):
    """An injected disk failure the process cannot write through.

    Raised for ``enospc`` (the write never happened) and ``torn-write``
    (a prefix landed and the process is considered dead mid-write); the
    silent kinds — bit flips, dropped fsyncs, lost renames — never
    raise, because real disks do not announce them either.
    """

    def __init__(self, kind: DiskFaultKind, path: str):
        super().__init__(f"injected {kind.value} on {path!r}")
        self.kind = kind
        self.path = path


#: Evaluation order for per-write gates: at most one fault fires per
#: write, the first whose gate passes.
_WRITE_GATE_ORDER = (
    ("enospc_rate", DiskFaultKind.ENOSPC),
    ("torn_write_rate", DiskFaultKind.TORN_WRITE),
    ("bit_flip_rate", DiskFaultKind.BIT_FLIP),
)


@dataclass(frozen=True)
class DiskFaultPlan:
    """A seeded, reproducible schedule of filesystem misbehaviour."""

    seed: int = 0
    torn_write_rate: float = 0.0
    """Per-write probability only a prefix of the buffer lands and the
    process dies mid-write."""
    bit_flip_rate: float = 0.0
    """Per-write probability one bit of the buffer flips silently."""
    enospc_rate: float = 0.0
    """Per-write probability the write fails cleanly with ENOSPC."""
    fsync_drop_rate: float = 0.0
    """Per-fsync probability the sync silently does nothing."""
    rename_lost_rate: float = 0.0
    """Per-replace probability the rename is lost on the next crash."""

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                rate = getattr(self, spec.name)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"{spec.name} must be in [0, 1], got {rate}")

    # -- decisions ------------------------------------------------------------

    def write_fault(self, nonce: int, generation: int) -> Optional[DiskFaultKind]:
        """The fault injected into this write, if any."""
        for rate_name, kind in _WRITE_GATE_ORDER:
            rate = getattr(self, rate_name)
            if rate > 0.0 and (
                stable_unit("disk-fault", self.seed, kind.value, nonce, generation)
                < rate
            ):
                return kind
        return None

    def fsync_dropped(self, nonce: int, generation: int) -> bool:
        """Whether this fsync silently fails to make data durable."""
        return self.fsync_drop_rate > 0.0 and (
            stable_unit(
                "disk-fault",
                self.seed,
                DiskFaultKind.FSYNC_DROP.value,
                nonce,
                generation,
            )
            < self.fsync_drop_rate
        )

    def rename_lost(self, nonce: int, generation: int) -> bool:
        """Whether this replace's directory update dies with the process."""
        return self.rename_lost_rate > 0.0 and (
            stable_unit(
                "disk-fault",
                self.seed,
                DiskFaultKind.RENAME_LOST.value,
                nonce,
                generation,
            )
            < self.rename_lost_rate
        )

    def torn_fraction(self, nonce: int) -> float:
        """How much of a torn write's buffer survives, in ``[0, 1)``."""
        return stable_unit("disk-cut", self.seed, nonce)

    def flip_position(self, nonce: int, bit_count: int) -> int:
        """Which bit of the buffer a bit-flip corrupts."""
        position = int(stable_unit("disk-flip", self.seed, nonce) * bit_count)
        return min(position, bit_count - 1)

    # -- introspection --------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing."""
        return all(
            getattr(self, spec.name) == 0.0
            for spec in fields(self)
            if spec.name.endswith("_rate")
        )

    @classmethod
    def named(cls, name: str, *, seed: int = 0) -> "DiskFaultPlan":
        """Look up a registered plan, reseeded."""
        try:
            template = DISK_NAMED_PLANS[name]
        except KeyError:
            raise ValueError(
                f"unknown disk fault plan {name!r}; known: {sorted(DISK_NAMED_PLANS)}"
            ) from None
        from dataclasses import replace

        return replace(template, seed=seed)


#: Registered plans, from benign to hostile.  ``disk-chaos`` is the
#: acceptance bar: torn writes, silent bit rot, full disks, lying
#: fsyncs, and lost renames all at once.
DISK_NAMED_PLANS: Dict[str, DiskFaultPlan] = {
    "disk-calm": DiskFaultPlan(),
    "torn-tails": DiskFaultPlan(torn_write_rate=0.05),
    "bit-rot": DiskFaultPlan(bit_flip_rate=0.05),
    "disk-chaos": DiskFaultPlan(
        torn_write_rate=0.02,
        bit_flip_rate=0.02,
        enospc_rate=0.01,
        fsync_drop_rate=0.03,
        rename_lost_rate=0.05,
    ),
}


@dataclass
class DiskFaultStats:
    """Ledger of every injected fault and every simulated crash.

    The disk-chaos harness reconciles this against what ``fsck`` and
    the scavenging loaders detected: a fault that is in this ledger but
    surfaced nowhere — not as a crash, not as a torn tail, not as a
    detected corrupt record, not overwritten before it was ever read —
    would be a silently-accepted corruption.
    """

    crashes: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    ledger: List[dict] = field(default_factory=list)

    def record(self, kind: DiskFaultKind, path: str, nonce: int, generation: int):
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        self.ledger.append(
            {
                "kind": kind.value,
                "path": os.path.basename(path),
                "nonce": nonce,
                "generation": generation,
            }
        )

    def as_dict(self) -> dict:
        return {
            "crashes": self.crashes,
            "injected": dict(sorted(self.injected.items())),
            "ledger": list(self.ledger),
        }


class FaultyFileOps(FileOps):
    """A :class:`FileOps` that injects a plan and models crash loss.

    The durability shadow tracks, per path, how many bytes are
    *actually durable* (fsynced without the sync being dropped), which
    created files and renames are still waiting on a directory fsync,
    and what every pending rename would roll back to.
    :meth:`simulate_crash` applies the shadow to the real files:
    non-durable suffixes are truncated away, non-durable directory
    entries disappear, lost renames revert.  Anything the shadow says
    survived is exactly what a kernel that honoured every (non-dropped)
    fsync would have kept.
    """

    def __init__(self, plan: DiskFaultPlan, *, base: FileOps = REAL_OPS):
        self.plan = plan
        self.generation = 0
        self.stats = DiskFaultStats()
        self._base = base
        self._durable: Dict[str, int] = {}
        self._created: Set[str] = set()
        self._pending_replaces: List[dict] = []
        self._open: List[FileHandle] = []

    # -- opens ----------------------------------------------------------------

    def open_append(self, path) -> FileHandle:
        path = str(path)
        if not os.path.exists(path):
            self._created.add(path)
            self._durable.setdefault(path, 0)
        else:
            # Bytes that survived a previous crash are durable by
            # construction; the shadow only tracks this incarnation.
            self._durable.setdefault(path, os.path.getsize(path))
        handle = self._base.open_append(path)
        self._open.append(handle)
        return handle

    def open_trunc(self, path) -> FileHandle:
        path = str(path)
        if not os.path.exists(path):
            self._created.add(path)
        handle = self._base.open_trunc(path)
        self._durable[path] = 0
        self._open.append(handle)
        return handle

    # -- writes ---------------------------------------------------------------

    def write(self, handle: FileHandle, data: bytes) -> None:
        handle.stream_crc = zlib.crc32(data, handle.stream_crc)
        nonce = zlib.crc32(data)
        kind = self.plan.write_fault(nonce, self.generation)
        if kind is DiskFaultKind.ENOSPC:
            self.stats.record(kind, handle.path, nonce, self.generation)
            raise DiskFault(kind, handle.path)
        if kind is DiskFaultKind.TORN_WRITE:
            cut = min(int(self.plan.torn_fraction(nonce) * len(data)), len(data) - 1)
            self._base.write(handle, data[:cut])
            self._base.flush(handle)
            self.stats.record(kind, handle.path, nonce, self.generation)
            raise DiskFault(kind, handle.path)
        if kind is DiskFaultKind.BIT_FLIP and data:
            position = self.plan.flip_position(nonce, len(data) * 8)
            corrupted = bytearray(data)
            corrupted[position // 8] ^= 1 << (position % 8)
            data = bytes(corrupted)
            self.stats.record(kind, handle.path, nonce, self.generation)
        self._base.write(handle, data)

    def flush(self, handle: FileHandle) -> None:
        self._base.flush(handle)

    def fsync(self, handle: FileHandle) -> None:
        self._base.flush(handle)
        if self.plan.fsync_dropped(handle.stream_crc, self.generation):
            self.stats.record(
                DiskFaultKind.FSYNC_DROP, handle.path, handle.stream_crc,
                self.generation,
            )
            return  # the sync lied; the shadow keeps the old durable length
        self._base.fsync(handle)
        self._durable[handle.path] = handle.raw.tell()

    def close(self, handle: FileHandle) -> None:
        self._base.close(handle)
        if handle in self._open:
            self._open.remove(handle)

    # -- renames and directories ----------------------------------------------

    def replace(self, src, dst) -> None:
        src, dst = str(src), str(dst)
        with open(src, "rb") as handle:
            new_bytes = handle.read()
        old_bytes = None
        if os.path.exists(dst):
            with open(dst, "rb") as handle:
                old_bytes = handle.read()
        self._base.replace(src, dst)
        nonce = zlib.crc32(new_bytes)
        self._durable[dst] = len(new_bytes)
        self._durable.pop(src, None)
        if self.plan.rename_lost(nonce, self.generation):
            self.stats.record(DiskFaultKind.RENAME_LOST, dst, nonce, self.generation)
            self._pending_replaces.append(
                {"src": src, "dst": dst, "old": old_bytes, "new": new_bytes}
            )
        else:
            self._created.discard(src)

    def fsync_dir(self, dirpath) -> None:
        dirpath = str(dirpath) or "."
        self._base.fsync_dir(dirpath)
        resolved = os.path.abspath(dirpath)
        self._created = {
            path
            for path in self._created
            if os.path.abspath(os.path.dirname(path) or ".") != resolved
        }
        self._pending_replaces = [
            pending
            for pending in self._pending_replaces
            if os.path.abspath(os.path.dirname(pending["dst"]) or ".") != resolved
        ]

    def truncate(self, path, size: int) -> None:
        self._base.truncate(path, size)
        self._durable[str(path)] = min(self._durable.get(str(path), size), size)

    # -- the crash ------------------------------------------------------------

    def simulate_crash(self) -> None:
        """Apply the durability shadow: keep only what a real crash would.

        Closes every live handle, truncates each file to its durable
        length, reverts renames whose directory update never became
        durable, deletes files whose directory entry never became
        durable, and advances the fault generation so the restarted
        process re-rolls every gate.
        """
        for handle in list(self._open):
            try:
                self._base.close(handle)
            except OSError:
                pass
        self._open = []
        for path, durable in self._durable.items():
            if os.path.exists(path) and os.path.getsize(path) > durable:
                self._base.truncate(path, durable)
        for pending in reversed(self._pending_replaces):
            with open(pending["src"], "wb") as handle:
                handle.write(pending["new"])
            if pending["old"] is None:
                if os.path.exists(pending["dst"]):
                    os.remove(pending["dst"])
            else:
                with open(pending["dst"], "wb") as handle:
                    handle.write(pending["old"])
        for path in self._created:
            if os.path.exists(path):
                os.remove(path)
        self._durable = {}
        self._created = set()
        self._pending_replaces = []
        self.generation += 1
        self.stats.crashes += 1
