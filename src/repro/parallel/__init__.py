"""Parallel crawl execution: shard the lock-step study across processes.

Public surface:

* :func:`run_parallel` — execute a :class:`~repro.core.runner.Study`
  sharded over N worker processes, byte-identical to the sequential
  run (reachable as ``Study.run(workers=N)``);
* :func:`plan_shards` / :class:`ShardPlan` — the machine-granular
  treatment partition the parity argument rests on;
* :func:`run_crawl_bench` — the worker-count sweep behind
  ``repro-study crawl-bench`` and ``BENCH_crawl.json``.
"""

from repro.parallel.executor import (
    ShardPlan,
    WorkerFailure,
    plan_shards,
    run_parallel,
)
from repro.parallel.bench import (
    BenchCell,
    BenchReport,
    bench_config,
    dataset_digest,
    profile_sequential,
    run_crawl_bench,
)

__all__ = [
    "ShardPlan",
    "WorkerFailure",
    "plan_shards",
    "run_parallel",
    "BenchCell",
    "BenchReport",
    "bench_config",
    "dataset_digest",
    "profile_sequential",
    "run_crawl_bench",
]
