"""Process-parallel crawl execution with byte-identical parity.

The paper's crawl ran on 44 machines precisely because lock-step
rounds are embarrassingly parallel: within a round, every treatment
issues the same query independently.  This executor exploits the same
structure on one host.

Design
------
* **Sharding is machine-granular.**  Treatments are grouped by the
  crawl machine their browser is bound to (``index % machine_count`` —
  the fleet assignment in :meth:`Study._build_treatments`), and
  machines are dealt round-robin to workers.  The per-IP rate limiter
  is the only cross-treatment coupling in the engine, and its
  decisions depend only on the per-IP request sequence — keeping every
  browser of a machine in one worker preserves that sequence exactly,
  so admission (and therefore CAPTCHAs, retries, and failures) is
  identical to the sequential run.
* **Workers are replicas, not clones.**  Each worker process rebuilds
  its whole apparatus — world, engine, datacenters, gateway — from the
  same :class:`StudyConfig`.  That is cheap because everything derives
  from one integer seed, and it guarantees a worker's engine state is
  exactly what the sequential engine's state would be restricted to
  the worker's shard of traffic.
* **Everything else is request-determined.**  Nonces derive from
  (browser id, per-browser ordinal); DNS rotation keys on the nonce;
  per-datacenter index skew keys on the DNS-resolved frontend IP;
  sessions key on per-browser cookies.  None of it depends on how
  requests from different treatments interleave.
* **The merge is a canonical-order sort.**  Workers stream one message
  per completed round; the parent flushes rounds in schedule order,
  each round's outcomes sorted by treatment index — the exact order
  the sequential loop produces.  :class:`CrawlStats` counters are sums
  and merge associatively.

The result: ``SerpDataset``, ``CrawlStats``, and the failure list are
byte-identical to ``Study.run()`` on a single core, for any worker
count, with or without the serving gateway in the path.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.runner import Study

__all__ = ["ShardPlan", "plan_shards", "run_parallel"]

#: Per-worker message-queue slack before backpressure kicks in.
_QUEUE_DEPTH_PER_WORKER = 8

#: Seconds between liveness checks while waiting on worker messages.
_POLL_SECONDS = 1.0


@dataclass(frozen=True)
class ShardPlan:
    """Treatment → worker assignment for one study."""

    workers: int
    """Effective worker count (clamped to the number of machine groups)."""

    assignments: Tuple[Tuple[int, ...], ...]
    """Per worker, the treatment indices it crawls (ascending)."""

    def __post_init__(self) -> None:
        seen = set()
        for shard in self.assignments:
            for index in shard:
                if index in seen:
                    raise ValueError(f"treatment {index} assigned twice")
                seen.add(index)


def plan_shards(
    treatment_count: int, machine_count: int, workers: int
) -> ShardPlan:
    """Partition treatments so no crawl machine spans two workers.

    Treatments sharing a machine share a client IP; the engine's
    rolling per-IP rate limiter must see that IP's requests as one
    ordered sequence for parity, so the machine group is the atomic
    unit of sharding.  Workers the plan cannot feed (more workers than
    occupied machines) are dropped rather than spawned idle.
    """
    if treatment_count < 1:
        raise ValueError("need at least one treatment")
    if machine_count < 1:
        raise ValueError("need at least one machine")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    occupied_machines = min(machine_count, treatment_count)
    effective = min(workers, occupied_machines)
    shards: List[List[int]] = [[] for _ in range(effective)]
    for index in range(treatment_count):
        machine = index % machine_count
        shards[machine % effective].append(index)
    return ShardPlan(
        workers=effective,
        assignments=tuple(tuple(shard) for shard in shards),
    )


def _preferred_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits nothing
    mutable that matters — workers rebuild from the config), else the
    platform default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _worker_main(worker_id: int, config, indices, result_queue) -> None:
    """Worker entry point: rebuild the study, crawl the shard, stream rounds."""
    try:
        study = Study(config)

        def emit(ordinal: int, outcomes) -> None:
            result_queue.put(("round", worker_id, ordinal, outcomes))

        study.run_shard(list(indices), on_round=emit)
        result_queue.put(("done", worker_id, study.stats))
    except BaseException:  # propagate everything, including KeyboardInterrupt
        result_queue.put(("error", worker_id, traceback.format_exc()))


def run_parallel(
    study: Study,
    *,
    workers: int,
    sink=None,
    start_method: Optional[str] = None,
) -> SerpDataset:
    """Run ``study``'s full schedule sharded across worker processes.

    The parent merges worker results back in canonical (round,
    treatment) order, feeds ``sink`` record-by-record in that order,
    and leaves ``study.stats`` / ``study.failures`` holding the merged
    counters — exactly the observable state a sequential
    :meth:`Study.run` leaves behind.

    Args:
        study: A freshly constructed study (its browsers must not have
            issued any requests — per-browser nonce streams restart in
            each worker).
        workers: Requested worker count; the effective count is
            clamped to the number of occupied crawl machines.
        sink: Optional per-record callable, as in :meth:`Study.run`.
        start_method: ``multiprocessing`` start method override
            (default: ``fork`` when available).

    Returns:
        The merged :class:`SerpDataset`.
    """
    if study.stats.requests or study.failures:
        raise ValueError(
            "parallel run requires a freshly constructed Study "
            "(this one has already crawled)"
        )
    plan = plan_shards(
        len(study.treatments), len(study.fleet), workers
    )
    context = multiprocessing.get_context(start_method or _preferred_start_method())
    result_queue = context.Queue(maxsize=plan.workers * _QUEUE_DEPTH_PER_WORKER)
    processes = [
        context.Process(
            target=_worker_main,
            args=(worker_id, study.config, plan.assignments[worker_id], result_queue),
            name=f"crawl-worker-{worker_id}",
            daemon=True,
        )
        for worker_id in range(plan.workers)
    ]
    for process in processes:
        process.start()

    dataset = SerpDataset()
    try:
        _merge(study, plan, processes, result_queue, dataset, sink)
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join()
    return dataset


def _merge(study, plan, processes, result_queue, dataset, sink) -> None:
    """Drain worker messages, flushing rounds in canonical order."""
    total_rounds = study.round_count()
    pending: dict = {}  # ordinal -> list of per-worker outcome lists
    arrivals: dict = {}  # ordinal -> how many workers have reported
    next_ordinal = 0
    done = 0

    def flush_ready() -> None:
        nonlocal next_ordinal
        while arrivals.get(next_ordinal, 0) == plan.workers:
            outcomes = sorted(pending.pop(next_ordinal), key=lambda pair: pair[0])
            del arrivals[next_ordinal]
            for _, outcome in outcomes:
                if isinstance(outcome, SerpRecord):
                    dataset.add(outcome)
                    if sink is not None:
                        sink(outcome)
                else:
                    study.failures.append(outcome)
            next_ordinal += 1

    while done < plan.workers:
        try:
            message = result_queue.get(timeout=_POLL_SECONDS)
        except queue_module.Empty:
            for process in processes:
                if process.exitcode not in (None, 0):
                    raise RuntimeError(
                        f"{process.name} died with exit code {process.exitcode}"
                    )
            continue
        kind = message[0]
        if kind == "round":
            _, _, ordinal, outcomes = message
            pending.setdefault(ordinal, []).extend(outcomes)
            arrivals[ordinal] = arrivals.get(ordinal, 0) + 1
            flush_ready()
        elif kind == "done":
            study.stats.merge(message[2])
            done += 1
        else:  # "error"
            raise RuntimeError(
                f"crawl worker {message[1]} failed:\n{message[2]}"
            )
    flush_ready()
    if next_ordinal != total_rounds:
        raise RuntimeError(
            f"merge incomplete: flushed {next_ordinal} of {total_rounds} rounds"
        )
