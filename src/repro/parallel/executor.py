"""Process-parallel crawl execution with byte-identical parity.

The paper's crawl ran on 44 machines precisely because lock-step
rounds are embarrassingly parallel: within a round, every treatment
issues the same query independently.  This executor exploits the same
structure on one host.

Design
------
* **Sharding is machine-granular.**  Treatments are grouped by the
  crawl machine their browser is bound to (``index % machine_count`` —
  the fleet assignment in :meth:`Study._build_treatments`), and
  machines are dealt round-robin to workers.  The per-IP rate limiter
  is the only cross-treatment coupling in the engine, and its
  decisions depend only on the per-IP request sequence — keeping every
  browser of a machine in one worker preserves that sequence exactly,
  so admission (and therefore CAPTCHAs, retries, and failures) is
  identical to the sequential run.
* **Workers inherit, they do not rebuild.**  The parent constructs and
  pre-warms the whole apparatus once (world, engine, ranking pools,
  digest caches — :meth:`Study.prefork_warmup`), then forked workers
  inherit it copy-on-write; ``spawn`` platforms receive the same built
  study pickled.  Everything inherited is either pure in the seed
  (world, caches — shared bytes, never diverge) or freshly zeroed
  serving state (sessions, rate-limiter windows, nonce counters — the
  state a rebuilt worker would start with anyway), so shard output is
  byte-identical to the rebuild-from-config strategy this replaces.
  Only if the study will not pickle does a spawn worker fall back to
  rebuilding from the :class:`StudyConfig`; ``Study.worker_rebuilds``
  counts how many workers took that path (0 on fork platforms — the
  invariant the tests pin).
* **Everything else is request-determined.**  Nonces derive from
  (browser id, per-browser ordinal); DNS rotation keys on the nonce;
  per-datacenter index skew keys on the DNS-resolved frontend IP;
  sessions key on per-browser cookies.  None of it depends on how
  requests from different treatments interleave.
* **The merge is a canonical-order sort.**  Workers stream one message
  per completed round; the parent flushes rounds in schedule order,
  each round's outcomes sorted by treatment index — the exact order
  the sequential loop produces.  :class:`CrawlStats` counters are sums
  and merge associatively.
* **Checkpoints are merge-time.**  Under ``checkpoint=path`` each
  worker ships its :meth:`Study.capture_state` snapshot with every
  round; the parent journals a round (outcomes + all worker states)
  durably *before* releasing it to the dataset and sink.  On resume,
  every worker restores its own shard snapshot and re-enters the
  schedule at the first un-journalled round — a worker that had raced
  ahead of the durable prefix simply re-crawls, byte-identically,
  because its state was reset to the prefix boundary.

The result: ``SerpDataset``, ``CrawlStats``, and the failure list are
byte-identical to ``Study.run()`` on a single core, for any worker
count, with or without the serving gateway in the path, and with or
without a kill-and-resume in between.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import traceback
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.runner import Study, deserialize_outcome, serialize_outcome
from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    load_checkpoint,
)

__all__ = ["ShardPlan", "WorkerFailure", "plan_shards", "run_parallel"]

#: Per-worker message-queue slack before backpressure kicks in.
_QUEUE_DEPTH_PER_WORKER = 8

#: Seconds between liveness checks while waiting on worker messages.
_POLL_SECONDS = 1.0


class WorkerFailure(RuntimeError):
    """A crawl worker process died before completing its shard.

    Raised by the *unsupervised* parallel path (``Study.run(workers=N)``
    without ``supervise=True``), where a dead worker is unrecoverable:
    the run fails fast and structured — worker id, exit code, and the
    shard's treatment indices — instead of blocking on a pipe that will
    never produce.  Supervised runs recover instead of raising; see
    :mod:`repro.supervise`.
    """

    def __init__(self, worker_id: int, exit_code: Optional[int], shard) -> None:
        self.worker_id = worker_id
        self.exit_code = exit_code
        self.shard: Tuple[int, ...] = tuple(shard)
        super().__init__(
            f"crawl worker {worker_id} (treatments {list(self.shard)}) died "
            f"with exit code {exit_code} before completing its shard; "
            "run with supervise=True for automatic recovery"
        )


@dataclass(frozen=True)
class ShardPlan:
    """Treatment → worker assignment for one study."""

    workers: int
    """Effective worker count (clamped to the number of machine groups)."""

    assignments: Tuple[Tuple[int, ...], ...]
    """Per worker, the treatment indices it crawls (ascending)."""

    def __post_init__(self) -> None:
        seen = set()
        for shard in self.assignments:
            for index in shard:
                if index in seen:
                    raise ValueError(f"treatment {index} assigned twice")
                seen.add(index)


def plan_shards(
    treatment_count: int, machine_count: int, workers: int
) -> ShardPlan:
    """Partition treatments so no crawl machine spans two workers.

    Treatments sharing a machine share a client IP; the engine's
    rolling per-IP rate limiter must see that IP's requests as one
    ordered sequence for parity, so the machine group is the atomic
    unit of sharding.  Workers the plan cannot feed (more workers than
    occupied machines) are dropped rather than spawned idle.
    """
    if treatment_count < 1:
        raise ValueError("need at least one treatment")
    if machine_count < 1:
        raise ValueError("need at least one machine")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    occupied_machines = min(machine_count, treatment_count)
    effective = min(workers, occupied_machines)
    shards: List[List[int]] = [[] for _ in range(effective)]
    for index in range(treatment_count):
        machine = index % machine_count
        shards[machine % effective].append(index)
    return ShardPlan(
        workers=effective,
        assignments=tuple(tuple(shard) for shard in shards),
    )


def _preferred_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits nothing
    mutable that matters — workers rebuild from the config), else the
    platform default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _worker_main(
    worker_id: int,
    payload,
    indices,
    result_queue,
    start_ordinal: int = 0,
    worker_state=None,
    capture: bool = False,
    trace: bool = False,
) -> None:
    """Worker entry point: take the study, crawl the shard, stream rounds.

    ``payload`` is normally the parent's built-and-warmed :class:`Study`
    (inherited copy-on-write under ``fork``, arriving pickled under
    ``spawn``); a :class:`StudyConfig` arrives only on the rebuild
    fallback, and the final ``done`` message reports which path ran.

    On resume (``start_ordinal > 0``) the worker restores its own shard
    snapshot before crawling, so its engine/browser/stats state is
    exactly what it was at the durable checkpoint boundary.  With
    ``trace`` set, each round message carries the shard's span trees;
    span identities derive from (trace id, round, treatment), so the
    parent can interleave trees from all shards into the canonical
    sequential trace.
    """
    try:
        rebuilt = not isinstance(payload, Study)
        study = Study(payload) if rebuilt else payload
        if worker_state is not None:
            study.restore_state(worker_state)

        def emit(ordinal: int, outcomes, state, spans) -> None:
            result_queue.put(("round", worker_id, ordinal, outcomes, state, spans))

        study.run_shard(
            list(indices),
            on_round=emit,
            start_ordinal=start_ordinal,
            capture_state=capture,
            trace=trace,
        )
        result_queue.put(
            ("done", worker_id, study.stats, study.fault_stats, rebuilt)
        )
    except BaseException:  # propagate everything, including KeyboardInterrupt
        result_queue.put(("error", worker_id, traceback.format_exc()))


def run_parallel(
    study: Study,
    *,
    workers: int,
    sink=None,
    start_method: Optional[str] = None,
    checkpoint: Optional[str] = None,
    trace: Optional[str] = None,
    events: Optional[str] = None,
    supervise: bool = False,
    policy=None,
    kill_specs=(),
) -> SerpDataset:
    """Run ``study``'s full schedule sharded across worker processes.

    The parent merges worker results back in canonical (round,
    treatment) order, feeds ``sink`` record-by-record in that order,
    and leaves ``study.stats`` / ``study.failures`` holding the merged
    counters — exactly the observable state a sequential
    :meth:`Study.run` leaves behind.

    Args:
        study: A freshly constructed study (its browsers must not have
            issued any requests — per-browser nonce streams restart in
            each worker).
        workers: Requested worker count; the effective count is
            clamped to the number of occupied crawl machines.
        sink: Optional per-record callable, as in :meth:`Study.run`.
        start_method: ``multiprocessing`` start method override
            (default: ``fork`` when available).
        checkpoint: Optional journal path, as in :meth:`Study.run`.
            Rounds become durable only once *every* worker has reported
            them; on resume all workers restart from the durable
            boundary with their shard state restored.  The journal
            records the effective worker count and refuses to resume
            under a different one (per-worker snapshots only fit the
            shard layout that produced them).
        trace: Optional canonical trace path, as in :meth:`Study.run`.
            Workers ship per-round span trees; the parent merges them
            through the same :class:`~repro.obs.exporters.TraceBuilder`
            the sequential run uses, so the file is byte-identical for
            any worker count.  Mutually exclusive with ``checkpoint``.
        events: Optional canonical wide-event log path, as in
            :meth:`Study.run`.  Crawl events are synthesized from the
            merged outcome stream at flush time (the parent-side
            builder pattern), so the file is byte-identical for any
            worker count and composes with ``checkpoint``.
        supervise: Delegate to :func:`repro.supervise.run_supervised`:
            workers are heartbeat-monitored, and crashed/hung workers'
            shards are re-executed from their last snapshot instead of
            failing the run.  Mutually exclusive with ``checkpoint``
            (supervision keeps shard snapshots in memory).
        policy: Optional :class:`~repro.supervise.SupervisorPolicy`
            (supervised runs only).
        kill_specs: Optional :class:`~repro.supervise.KillSpec` murder
            points (supervised runs only — tests and the chaos CLI).

    Returns:
        The merged :class:`SerpDataset`.
    """
    if supervise:
        if checkpoint is not None:
            raise ValueError(
                "supervise and checkpoint cannot be combined: supervised "
                "runs keep shard snapshots in memory, not in a journal"
            )
        from repro.supervise import run_supervised

        return run_supervised(
            study,
            workers=workers,
            sink=sink,
            start_method=start_method,
            trace=trace,
            events=events,
            policy=policy,
            kill_specs=kill_specs,
        )
    if policy is not None or kill_specs:
        raise ValueError("policy/kill_specs require supervise=True")
    if study.stats.requests or study.failures:
        raise ValueError(
            "parallel run requires a freshly constructed Study "
            "(this one has already crawled)"
        )
    if trace is not None and checkpoint is not None:
        raise ValueError(
            "trace and checkpoint cannot be combined: the checkpoint "
            "journal does not carry spans"
        )
    plan = plan_shards(
        len(study.treatments), len(study.fleet), workers
    )

    writer = None
    start_ordinal = 0
    worker_states: dict = {}
    dataset = SerpDataset()
    event_builder = study._events_builder(events) if events is not None else None
    if checkpoint is not None:
        fingerprint = study.checkpoint_fingerprint()
        resume = load_checkpoint(
            checkpoint, expected_fingerprint=fingerprint, workers=plan.workers
        )
        if resume is not None:
            for ordinal, outcomes in enumerate(resume.rounds):
                decoded = [deserialize_outcome(payload) for payload in outcomes]
                for outcome in decoded:
                    if isinstance(outcome, SerpRecord):
                        dataset.add(outcome)
                        if sink is not None:
                            sink(outcome)
                    else:
                        study.failures.append(outcome)
                if event_builder is not None:
                    event_builder.add_round(ordinal, list(enumerate(decoded)))
            start_ordinal = resume.next_ordinal
            worker_states = resume.worker_states
            writer = CheckpointWriter.append_to(checkpoint)
        else:
            writer = CheckpointWriter.create(
                checkpoint,
                {
                    "version": CHECKPOINT_VERSION,
                    "workers": plan.workers,
                    "fingerprint": fingerprint,
                },
            )

    builder = study._trace_builder(trace) if trace is not None else None
    context = multiprocessing.get_context(start_method or _preferred_start_method())
    # Zero-rebuild delivery: warm every pure cache once in the parent,
    # then hand workers the built study itself — inherited copy-on-write
    # under fork, pickled by multiprocessing under spawn.  Only a study
    # that cannot pickle makes spawn workers rebuild from the config
    # (study.worker_rebuilds counts those).
    payload = study
    study.prefork_warmup()
    if context.get_start_method() != "fork":
        try:
            pickle.dumps(study)
        except Exception:
            payload = study.config
    result_queue = context.Queue(maxsize=plan.workers * _QUEUE_DEPTH_PER_WORKER)
    processes = [
        context.Process(
            target=_worker_main,
            args=(
                worker_id,
                payload,
                plan.assignments[worker_id],
                result_queue,
                start_ordinal,
                worker_states.get(worker_id),
                checkpoint is not None,
                trace is not None,
            ),
            name=f"crawl-worker-{worker_id}",
            daemon=True,
        )
        for worker_id in range(plan.workers)
    ]
    for process in processes:
        process.start()

    try:
        _merge(
            study,
            plan,
            processes,
            result_queue,
            dataset,
            sink,
            start_ordinal=start_ordinal,
            writer=writer,
            builder=builder,
            event_builder=event_builder,
        )
    finally:
        if writer is not None:
            writer.close()
        if builder is not None:
            builder.close()
            study.tracer.disable()
        if event_builder is not None:
            event_builder.close()
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join()
    return dataset


def _merge(
    study,
    plan,
    processes,
    result_queue,
    dataset,
    sink,
    *,
    start_ordinal: int = 0,
    writer=None,
    builder=None,
    event_builder=None,
) -> None:
    """Drain worker messages, flushing rounds in canonical order.

    With a ``writer``, each round is journalled durably (outcomes in
    canonical order plus every worker's state snapshot) *before* its
    records reach the dataset and sink — the invariant that makes a
    kill at any instant recoverable without losing acknowledged
    records.  With a ``builder``, each flushed round's span trees (from
    all shards) are handed to the trace builder, which sorts them into
    canonical treatment order and writes the round — the same code path
    a sequential traced run takes.
    """
    total_rounds = study.round_count()
    pending: dict = {}  # ordinal -> list of (treatment_index, outcome)
    states: dict = {}  # ordinal -> {worker_id: state snapshot}
    spans: dict = {}  # ordinal -> list of span trees from all shards
    arrivals: dict = {}  # ordinal -> how many workers have reported
    next_ordinal = start_ordinal
    done_workers: set = set()

    def flush_ready() -> None:
        nonlocal next_ordinal
        while arrivals.get(next_ordinal, 0) == plan.workers:
            outcomes = sorted(pending.pop(next_ordinal), key=lambda pair: pair[0])
            round_states = states.pop(next_ordinal, None)
            round_spans = spans.pop(next_ordinal, None)
            del arrivals[next_ordinal]
            if writer is not None:
                writer.append_round(
                    next_ordinal,
                    [serialize_outcome(outcome) for _, outcome in outcomes],
                    round_states or {},
                )
            if builder is not None:
                builder.add_round(next_ordinal, round_spans or [])
            if event_builder is not None:
                event_builder.add_round(next_ordinal, outcomes)
            for _, outcome in outcomes:
                if isinstance(outcome, SerpRecord):
                    dataset.add(outcome)
                    if sink is not None:
                        sink(outcome)
                else:
                    study.failures.append(outcome)
            next_ordinal += 1

    def handle(message) -> None:
        kind = message[0]
        if kind == "round":
            _, worker_id, ordinal, outcomes, state, round_spans = message
            pending.setdefault(ordinal, []).extend(outcomes)
            if state is not None:
                states.setdefault(ordinal, {})[worker_id] = state
            if round_spans is not None:
                spans.setdefault(ordinal, []).extend(round_spans)
            arrivals[ordinal] = arrivals.get(ordinal, 0) + 1
            flush_ready()
        elif kind == "done":
            study.stats.merge(message[2])
            study.fault_stats.merge(message[3])
            if message[4]:
                study.worker_rebuilds += 1
            done_workers.add(message[1])
        else:  # "error"
            raise RuntimeError(
                f"crawl worker {message[1]} failed:\n{message[2]}"
            )

    while len(done_workers) < plan.workers:
        try:
            message = result_queue.get(timeout=_POLL_SECONDS)
        except queue_module.Empty:
            for worker_id, process in enumerate(processes):
                if worker_id in done_workers or process.exitcode is None:
                    continue
                # The process is gone but may have raced its final
                # messages onto the queue — drain before judging, so a
                # worker that finished and exited cleanly is not
                # misreported (and so the failure points at the true
                # resume position).
                try:
                    while worker_id not in done_workers:
                        handle(result_queue.get_nowait())
                except queue_module.Empty:
                    pass
                if worker_id not in done_workers:
                    raise WorkerFailure(
                        worker_id, process.exitcode, plan.assignments[worker_id]
                    )
            continue
        handle(message)
    flush_ready()
    if next_ordinal != total_rounds:
        raise RuntimeError(
            f"merge incomplete: flushed {next_ordinal} of {total_rounds} rounds"
        )
