"""Crawl benchmark: sweep worker counts, prove parity, record history.

``run_crawl_bench`` runs the same study config once per worker count,
measures wall-clock crawl time, verifies every parallel dataset is
byte-identical to the sequential baseline (SHA-256 over the canonical
JSONL serialisation), and writes a machine-readable ``BENCH_crawl.json``
— the first entry in the repo's perf trajectory.  The ``--profile``
path wraps the sequential run in :mod:`cProfile` so future perf PRs
can cite the hot path they attack.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.datastore import SerpDataset
from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.core.runner import Study

__all__ = [
    "BenchCell",
    "BenchReport",
    "bench_config",
    "run_crawl_bench",
    "profile_sequential",
    "DEFAULT_WORKER_COUNTS",
]

DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Worker counts used by ``--smoke`` (CI: fast, still exercises the merge).
SMOKE_WORKER_COUNTS: Tuple[int, ...] = (1, 2)


def dataset_digest(dataset: SerpDataset) -> str:
    """SHA-256 over the dataset's canonical JSONL bytes.

    Exactly what :meth:`SerpDataset.save` writes, so digest equality
    *is* byte-identity of the persisted artefact.
    """
    hasher = hashlib.sha256()
    for record in dataset:
        hasher.update(json.dumps(record.to_dict()).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def bench_config(
    scale: str = "standard",
    *,
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
) -> StudyConfig:
    """The benchmark study configs.

    ``standard`` keeps the full methodology at a size where a worker
    sweep finishes in minutes; ``smoke`` is the CI tier — seconds per
    cell, still covering every merge path.
    """
    from repro.queries.corpus import build_corpus
    from repro.queries.model import QueryCategory

    corpus = build_corpus()
    if scale == "standard":
        queries = (
            corpus.by_category(QueryCategory.LOCAL)[:20]
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
            + corpus.by_category(QueryCategory.POLITICIAN)[:5]
        )
        config = StudyConfig.small(
            queries, seed=seed, days=2, locations_per_granularity=8
        )
    elif scale == "smoke":
        queries = (
            corpus.by_category(QueryCategory.LOCAL)[:3]
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:1]
        )
        config = StudyConfig.small(
            queries, seed=seed, days=1, locations_per_granularity=3
        )
    else:
        raise ValueError(f"unknown bench scale {scale!r} (standard, smoke)")
    return config.with_overrides(route_via_gateway=route_via_gateway)


@dataclass(frozen=True)
class BenchCell:
    """One worker count's measurement."""

    workers: int
    wall_seconds: float
    pages: int
    requests: int
    failures: int
    requests_per_second: float
    speedup_vs_workers_1: float
    dataset_sha256: str
    byte_identical_to_sequential: bool


@dataclass
class BenchReport:
    """The full sweep, serialisable to ``BENCH_crawl.json``."""

    benchmark: str
    scale: str
    seed: int
    route_via_gateway: bool
    queries: int
    locations: int
    treatments: int
    rounds: int
    cpus: int
    start_method: str
    cells: List[BenchCell] = field(default_factory=list)
    fault_layer: Optional[dict] = None
    """Injection-off overhead of the fault/breaker layer: one extra
    sequential run under a zero-rate :class:`~repro.faults.plan.
    FaultPlan` (``calm``), which wires the full hardened path —
    FaultyNetwork, per-IP breakers, fault accounting — but injects
    nothing.  Must stay byte-identical to the plain sequential run."""
    obs_layer: Optional[dict] = None
    """Tracing-off overhead of the observability layer: the tracer
    hooks are permanently wired (``tracer.enabled`` guards in the
    network / engine / retry path), so one extra sequential run with
    the tracer disabled — the default — bounds their cost against the
    baseline, and a second run with ``trace=`` records what switching
    tracing on costs.  Both must stay byte-identical to the plain
    sequential run."""
    supervise_layer: Optional[dict] = None
    """Supervision overhead: one clean run under ``supervise=True`` at
    the sweep's largest worker count (heartbeats, snapshot capture, and
    the parent-side watchdog all active, nothing failing), compared
    against the same worker count unsupervised — plus a kill-and-
    recover datapoint: the same run with a worker SIGKILLed at a round
    boundary, measuring what one full recovery costs end-to-end.  Both
    must stay byte-identical to the sequential baseline."""

    @property
    def parity_ok(self) -> bool:
        ok = all(cell.byte_identical_to_sequential for cell in self.cells)
        if self.fault_layer is not None:
            ok = ok and self.fault_layer["byte_identical_to_sequential"]
        if self.obs_layer is not None:
            ok = (
                ok
                and self.obs_layer["byte_identical_to_sequential"]
                and self.obs_layer["traced_byte_identical_to_sequential"]
            )
        if self.supervise_layer is not None:
            ok = (
                ok
                and self.supervise_layer["byte_identical_to_sequential"]
                and self.supervise_layer["kill_recover"][
                    "byte_identical_to_sequential"
                ]
            )
        return ok

    def to_dict(self) -> dict:
        raw = asdict(self)
        raw["parity_ok"] = self.parity_ok
        return raw

    def write(self, path) -> Path:
        target = Path(path)
        target.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return target

    def render(self) -> str:
        lines = [
            f"crawl bench [{self.scale}]: {self.queries} queries x "
            f"{self.rounds // max(1, self.queries)} days, "
            f"{self.treatments} treatments, {self.rounds} rounds, "
            f"{self.cpus} cpu(s), start_method={self.start_method}, "
            f"gateway={'on' if self.route_via_gateway else 'off'}",
            f"{'workers':>7} {'wall s':>8} {'pages':>7} {'req/s':>8} "
            f"{'speedup':>8} {'parity':>7}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.workers:>7} {cell.wall_seconds:>8.2f} {cell.pages:>7} "
                f"{cell.requests_per_second:>8.1f} "
                f"{cell.speedup_vs_workers_1:>7.2f}x "
                f"{'ok' if cell.byte_identical_to_sequential else 'FAIL':>7}"
            )
        if self.fault_layer is not None:
            layer = self.fault_layer
            lines.append(
                f"fault layer (calm plan, injection off): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
        if self.obs_layer is not None:
            layer = self.obs_layer
            lines.append(
                f"obs layer (tracing off, the default): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
            lines.append(
                f"obs layer (tracing on): {layer['traced_wall_seconds']:.2f}s, "
                f"{layer['traced_overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"{layer['trace_spans']} spans, parity "
                f"{'ok' if layer['traced_byte_identical_to_sequential'] else 'FAIL'}"
            )
        if self.supervise_layer is not None:
            layer = self.supervise_layer
            lines.append(
                f"supervise layer (workers={layer['workers']}, clean): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_unsupervised']:+.1f}% vs unsupervised, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
            kill = layer["kill_recover"]
            lines.append(
                f"supervise layer (one worker killed): "
                f"{kill['wall_seconds']:.2f}s, {kill['recoveries']} recovery, "
                f"parity "
                f"{'ok' if kill['byte_identical_to_sequential'] else 'FAIL'}"
            )
        return "\n".join(lines)


def run_crawl_bench(
    *,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    scale: str = "standard",
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
    out: Optional[os.PathLike] = None,
    start_method: Optional[str] = None,
) -> BenchReport:
    """Sweep worker counts over one config; verify parity against workers=1.

    The workers=1 cell runs the plain sequential path and its dataset
    digest is the parity baseline; every other cell runs through the
    parallel executor.  When ``out`` is given the report is also
    written there as JSON.
    """
    from repro.parallel.executor import _preferred_start_method, run_parallel

    if not worker_counts or worker_counts[0] != 1:
        worker_counts = (1,) + tuple(w for w in worker_counts if w != 1)
    config = bench_config(scale, seed=seed, route_via_gateway=route_via_gateway)
    probe = Study(config)
    report = BenchReport(
        benchmark="crawl",
        scale=scale,
        seed=seed,
        route_via_gateway=route_via_gateway,
        queries=len(config.queries),
        locations=probe.locations.total(),
        treatments=len(probe.treatments),
        rounds=probe.round_count(),
        cpus=os.cpu_count() or 1,
        start_method=start_method or _preferred_start_method(),
    )

    baseline_digest: Optional[str] = None
    baseline_wall: Optional[float] = None
    for workers in worker_counts:
        study = Study(config)
        started = time.perf_counter()
        if workers == 1:
            dataset = study.run()
        else:
            dataset = run_parallel(
                study, workers=workers, start_method=start_method
            )
        wall = time.perf_counter() - started
        digest = dataset_digest(dataset)
        if baseline_digest is None:
            baseline_digest = digest
            baseline_wall = wall
        report.cells.append(
            BenchCell(
                workers=workers,
                wall_seconds=round(wall, 4),
                pages=len(dataset),
                requests=study.stats.requests,
                failures=len(study.failures),
                requests_per_second=round(study.stats.requests / wall, 2),
                speedup_vs_workers_1=round(baseline_wall / wall, 3),
                dataset_sha256=digest,
                byte_identical_to_sequential=digest == baseline_digest,
            )
        )

    # Injection-off overhead: the hardened stack (FaultyNetwork with a
    # zero-rate plan + per-IP breakers) must be byte-identical to the
    # plain path, and its cost is recorded so perf history catches
    # regressions in the always-on robustness plumbing.
    from repro.faults.plan import FaultPlan

    calm_study = Study(config.with_overrides(fault_plan=FaultPlan(seed=seed)))
    started = time.perf_counter()
    calm_dataset = calm_study.run()
    calm_wall = time.perf_counter() - started
    report.fault_layer = {
        "wall_seconds": round(calm_wall, 4),
        "overhead_pct_vs_sequential": round(
            100.0 * (calm_wall - baseline_wall) / baseline_wall, 2
        ),
        "byte_identical_to_sequential": dataset_digest(calm_dataset)
        == baseline_digest,
    }

    # Tracing-off overhead: the tracer hooks stay wired even when no
    # trace is requested, so their disabled-path cost is bounded by an
    # identical sequential re-run; a traced run records what turning
    # tracing on costs and proves it never perturbs the dataset.
    import tempfile

    obs_study = Study(config)
    started = time.perf_counter()
    obs_dataset = obs_study.run()
    obs_wall = time.perf_counter() - started

    handle, trace_path = tempfile.mkstemp(suffix=".trace.jsonl")
    os.close(handle)
    try:
        traced_study = Study(config)
        started = time.perf_counter()
        traced_dataset = traced_study.run(trace=trace_path)
        traced_wall = time.perf_counter() - started
        from repro.obs.exporters import read_trace

        _, _, trace_summary = read_trace(trace_path)
    finally:
        os.unlink(trace_path)
    report.obs_layer = {
        "wall_seconds": round(obs_wall, 4),
        "overhead_pct_vs_sequential": round(
            100.0 * (obs_wall - baseline_wall) / baseline_wall, 2
        ),
        "byte_identical_to_sequential": dataset_digest(obs_dataset)
        == baseline_digest,
        "traced_wall_seconds": round(traced_wall, 4),
        "traced_overhead_pct_vs_sequential": round(
            100.0 * (traced_wall - baseline_wall) / baseline_wall, 2
        ),
        "trace_spans": trace_summary["spans"],
        "traced_byte_identical_to_sequential": dataset_digest(traced_dataset)
        == baseline_digest,
    }

    # Supervision overhead: heartbeats + per-round snapshot capture +
    # the parent watchdog, measured clean against the same worker count
    # unsupervised, then once more with a worker murdered at a round
    # boundary to price a full detect-respawn-reexecute cycle.
    from repro.supervise import KillSpec

    supervise_workers = max((w for w in worker_counts if w > 1), default=2)
    unsupervised_wall = next(
        (
            cell.wall_seconds
            for cell in report.cells
            if cell.workers == supervise_workers
        ),
        baseline_wall,
    )
    sup_study = Study(config)
    started = time.perf_counter()
    sup_dataset = run_parallel(
        sup_study,
        workers=supervise_workers,
        supervise=True,
        start_method=start_method,
    )
    sup_wall = time.perf_counter() - started

    kill_study = Study(config)
    started = time.perf_counter()
    kill_dataset = run_parallel(
        kill_study,
        workers=supervise_workers,
        supervise=True,
        start_method=start_method,
        kill_specs=(KillSpec(shard=0, ordinal=1),),
    )
    kill_wall = time.perf_counter() - started
    report.supervise_layer = {
        "workers": supervise_workers,
        "wall_seconds": round(sup_wall, 4),
        "overhead_pct_vs_unsupervised": round(
            100.0 * (sup_wall - unsupervised_wall) / unsupervised_wall, 2
        ),
        "byte_identical_to_sequential": dataset_digest(sup_dataset)
        == baseline_digest,
        "kill_recover": {
            "wall_seconds": round(kill_wall, 4),
            "recoveries": kill_study.supervisor.stats.recoveries,
            "byte_identical_to_sequential": dataset_digest(kill_dataset)
            == baseline_digest,
        },
    }
    if out is not None:
        report.write(out)
    return report


def profile_sequential(
    *,
    scale: str = "standard",
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
    top: int = 20,
) -> str:
    """cProfile the sequential crawl; return the top-N cumulative table."""
    import cProfile
    import pstats

    config = bench_config(scale, seed=seed, route_via_gateway=route_via_gateway)
    study = Study(config)
    profiler = cProfile.Profile()
    profiler.enable()
    study.run()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_crawl.py ...``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKER_COUNTS),
        help="comma-separated worker counts to sweep",
    )
    parser.add_argument("--scale", choices=["standard", "smoke"], default="standard")
    parser.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    parser.add_argument("--gateway", action="store_true", help="crawl via the gateway")
    parser.add_argument("--out", default="BENCH_crawl.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: smoke scale, workers 1,2, parity enforced",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also print a cProfile top-20 cumulative table of the sequential run",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, counts = "smoke", SMOKE_WORKER_COUNTS
    else:
        scale = args.scale
        counts = tuple(int(part) for part in args.workers.split(",") if part)
    report = run_crawl_bench(
        worker_counts=counts,
        scale=scale,
        seed=args.seed,
        route_via_gateway=args.gateway,
        out=args.out,
    )
    print(report.render())
    print(f"wrote {args.out}")
    if args.profile:
        print()
        print(profile_sequential(scale=scale, seed=args.seed,
                                 route_via_gateway=args.gateway))
    if not report.parity_ok:
        print("PARITY FAILURE: parallel dataset differs from sequential",
              file=sys.stderr)
        return 1
    return 0
