"""Crawl benchmark: sweep worker counts, prove parity, record history.

``run_crawl_bench`` measures the same study config at every worker
count, verifies every parallel dataset is byte-identical to the
sequential baseline (SHA-256 over the canonical JSONL serialisation),
and appends an entry to the ``BENCH_crawl.json`` perf *trajectory* —
a bounded, timestamped history keyed by git sha, so perf changes are
visible across PRs instead of overwritten by each one.

Every measurement is repeated (``--repeats``, default 5) with the
repeats *interleaved* across cells: the box's throughput drifts on the
scale of seconds (thermal/cgroup effects), so running all of cell A
then all of cell B folds that drift into the A-vs-B comparison.
Interleaving samples every cell under every drift regime; the reported
wall time is the minimum (least-noise estimator) with the median
alongside, and overhead percentages compare medians.  The ``--profile``
path wraps the sequential run in :mod:`cProfile` so future perf PRs
can cite the hot path they attack.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.datastore import SerpDataset
from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.core.runner import Study

__all__ = [
    "BenchCell",
    "BenchReport",
    "bench_config",
    "load_trajectory",
    "write_trajectory_entry",
    "TRAJECTORY_KEEP",
    "regression_message",
    "run_crawl_bench",
    "profile_sequential",
    "DEFAULT_WORKER_COUNTS",
    "DEFAULT_REPEATS",
]

DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Worker counts used by ``--smoke`` (CI: fast, still exercises the merge).
SMOKE_WORKER_COUNTS: Tuple[int, ...] = (1, 2)

#: Repeats per measurement; 5 keeps the min/median stable against the
#: box's observed ±30% run-to-run drift.
DEFAULT_REPEATS = 5

#: Trajectory entries kept in ``BENCH_crawl.json`` (oldest dropped).
TRAJECTORY_KEEP = 20


def dataset_digest(dataset: SerpDataset) -> str:
    """SHA-256 over the dataset's canonical JSONL bytes.

    Exactly what :meth:`SerpDataset.save` writes, so digest equality
    *is* byte-identity of the persisted artefact.
    """
    hasher = hashlib.sha256()
    for record in dataset:
        hasher.update(json.dumps(record.to_dict()).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def bench_config(
    scale: str = "standard",
    *,
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
) -> StudyConfig:
    """The benchmark study configs.

    ``standard`` keeps the full methodology at a size where a worker
    sweep finishes in minutes; ``smoke`` is the CI tier — seconds per
    cell, still covering every merge path.
    """
    from repro.queries.corpus import build_corpus
    from repro.queries.model import QueryCategory

    corpus = build_corpus()
    if scale == "standard":
        queries = (
            corpus.by_category(QueryCategory.LOCAL)[:20]
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
            + corpus.by_category(QueryCategory.POLITICIAN)[:5]
        )
        config = StudyConfig.small(
            queries, seed=seed, days=2, locations_per_granularity=8
        )
    elif scale == "smoke":
        queries = (
            corpus.by_category(QueryCategory.LOCAL)[:3]
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:1]
        )
        config = StudyConfig.small(
            queries, seed=seed, days=1, locations_per_granularity=3
        )
    else:
        raise ValueError(f"unknown bench scale {scale!r} (standard, smoke)")
    return config.with_overrides(route_via_gateway=route_via_gateway)


@dataclass(frozen=True)
class BenchCell:
    """One worker count's measurement (aggregated over repeats)."""

    workers: int
    wall_seconds: float
    """Minimum wall time across repeats — the least-noise estimator."""
    wall_seconds_median: float
    repeats: int
    pages: int
    requests: int
    failures: int
    requests_per_second: float
    """Throughput at the minimum wall time."""
    speedup_vs_workers_1: float
    """min(workers=1 wall) / min(this cell's wall)."""
    dataset_sha256: str
    byte_identical_to_sequential: bool
    """True only if *every* repeat's dataset matched the baseline digest."""


@dataclass
class BenchReport:
    """The full sweep, serialisable to ``BENCH_crawl.json``."""

    benchmark: str
    scale: str
    seed: int
    route_via_gateway: bool
    queries: int
    locations: int
    treatments: int
    rounds: int
    cpus: int
    start_method: str
    repeats: int = 1
    cells: List[BenchCell] = field(default_factory=list)
    fault_layer: Optional[dict] = None
    """Injection-off overhead of the fault/breaker layer: one extra
    sequential run under a zero-rate :class:`~repro.faults.plan.
    FaultPlan` (``calm``), which wires the full hardened path —
    FaultyNetwork, per-IP breakers, fault accounting — but injects
    nothing.  Must stay byte-identical to the plain sequential run."""
    obs_layer: Optional[dict] = None
    """Tracing-off overhead of the observability layer: the tracer
    hooks are permanently wired (``tracer.enabled`` guards in the
    network / engine / retry path), so one extra sequential run with
    the tracer disabled — the default — bounds their cost against the
    baseline, and a second run with ``trace=`` records what switching
    tracing on costs.  Both must stay byte-identical to the plain
    sequential run."""
    events_layer: Optional[dict] = None
    """Wide-event-log overhead: the crawl events are synthesized
    parent-side from round outcomes (never on the worker hot path), so
    the disabled cost is one ``is None`` check per flushed round.  One
    sequential run with the log off bounds that cost against the
    baseline; a second with ``events=`` prices turning the log on and
    proves it never perturbs the dataset.  Both must stay
    byte-identical to the plain sequential run."""
    supervise_layer: Optional[dict] = None
    """Supervision overhead: one clean run under ``supervise=True`` at
    the sweep's largest worker count (heartbeats, snapshot capture, and
    the parent-side watchdog all active, nothing failing), compared
    against the same worker count unsupervised — plus a kill-and-
    recover datapoint: the same run with a worker SIGKILLed at a round
    boundary, measuring what one full recovery costs end-to-end.  Both
    must stay byte-identical to the sequential baseline."""

    @property
    def parity_ok(self) -> bool:
        ok = all(cell.byte_identical_to_sequential for cell in self.cells)
        if self.fault_layer is not None:
            ok = ok and self.fault_layer["byte_identical_to_sequential"]
        if self.obs_layer is not None:
            ok = (
                ok
                and self.obs_layer["byte_identical_to_sequential"]
                and self.obs_layer["traced_byte_identical_to_sequential"]
            )
        if self.events_layer is not None:
            ok = (
                ok
                and self.events_layer["byte_identical_to_sequential"]
                and self.events_layer["enabled_byte_identical_to_sequential"]
            )
        if self.supervise_layer is not None:
            ok = (
                ok
                and self.supervise_layer["byte_identical_to_sequential"]
                and self.supervise_layer["kill_recover"][
                    "byte_identical_to_sequential"
                ]
            )
        return ok

    def to_dict(self) -> dict:
        raw = asdict(self)
        raw["parity_ok"] = self.parity_ok
        return raw

    def write(self, path, *, keep: int = TRAJECTORY_KEEP) -> Path:
        """Append this report to the trajectory file at ``path``.

        The file holds the last ``keep`` entries, each stamped with the
        UTC time and git sha that produced it.  A legacy single-report
        snapshot (the pre-trajectory format) is absorbed as the oldest
        entry rather than discarded.
        """
        return write_trajectory_entry(
            path, self.to_dict(), benchmark="crawl", keep=keep
        )

    def render(self) -> str:
        lines = [
            f"crawl bench [{self.scale}]: {self.queries} queries x "
            f"{self.rounds // max(1, self.queries)} days, "
            f"{self.treatments} treatments, {self.rounds} rounds, "
            f"{self.cpus} cpu(s), start_method={self.start_method}, "
            f"gateway={'on' if self.route_via_gateway else 'off'}, "
            f"repeats={self.repeats} (wall = min, med = median)",
            f"{'workers':>7} {'wall s':>8} {'med s':>8} {'pages':>7} "
            f"{'req/s':>8} {'speedup':>8} {'parity':>7}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.workers:>7} {cell.wall_seconds:>8.2f} "
                f"{cell.wall_seconds_median:>8.2f} {cell.pages:>7} "
                f"{cell.requests_per_second:>8.1f} "
                f"{cell.speedup_vs_workers_1:>7.2f}x "
                f"{'ok' if cell.byte_identical_to_sequential else 'FAIL':>7}"
            )
        if self.fault_layer is not None:
            layer = self.fault_layer
            lines.append(
                f"fault layer (calm plan, injection off): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
        if self.obs_layer is not None:
            layer = self.obs_layer
            lines.append(
                f"obs layer (tracing off, the default): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
            lines.append(
                f"obs layer (tracing on): {layer['traced_wall_seconds']:.2f}s, "
                f"{layer['traced_overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"{layer['trace_spans']} spans, parity "
                f"{'ok' if layer['traced_byte_identical_to_sequential'] else 'FAIL'}"
            )
        if self.events_layer is not None:
            layer = self.events_layer
            lines.append(
                f"events layer (log off, the default): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
            lines.append(
                f"events layer (log on): {layer['enabled_wall_seconds']:.2f}s, "
                f"{layer['enabled_overhead_pct_vs_sequential']:+.1f}% vs sequential, "
                f"{layer['events']} events, parity "
                f"{'ok' if layer['enabled_byte_identical_to_sequential'] else 'FAIL'}"
            )
        if self.supervise_layer is not None:
            layer = self.supervise_layer
            lines.append(
                f"supervise layer (workers={layer['workers']}, clean): "
                f"{layer['wall_seconds']:.2f}s, "
                f"{layer['overhead_pct_vs_unsupervised']:+.1f}% vs unsupervised, "
                f"parity {'ok' if layer['byte_identical_to_sequential'] else 'FAIL'}"
            )
            kill = layer["kill_recover"]
            lines.append(
                f"supervise layer (one worker killed): "
                f"{kill['wall_seconds']:.2f}s, {kill['recoveries']} recovery, "
                f"parity "
                f"{'ok' if kill['byte_identical_to_sequential'] else 'FAIL'}"
            )
        return "\n".join(lines)


def _git_sha() -> Optional[str]:
    """Short sha of HEAD, or None outside a usable git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def write_trajectory_entry(
    path, entry: dict, *, benchmark: str, keep: int = TRAJECTORY_KEEP
) -> Path:
    """Append one stamped entry to a trajectory-v1 file.

    The shared history mechanics for every bench (crawl, serve, ...):
    the entry gets the UTC timestamp and git sha of the producing run,
    the file keeps the last ``keep`` entries, and a legacy single-report
    snapshot is absorbed as the oldest entry rather than discarded.
    """
    target = Path(path)
    stamped = dict(entry)
    stamped["timestamp"] = (
        datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    )
    stamped["git_sha"] = _git_sha()
    entries = load_trajectory(target)
    entries.append(stamped)
    payload = {
        "benchmark": benchmark,
        "format": "trajectory-v1",
        "entries": entries[-keep:],
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def load_trajectory(path) -> List[dict]:
    """Entries of a ``BENCH_crawl.json`` trajectory, oldest first.

    Understands both the trajectory format and the legacy single-report
    snapshot (returned as a one-entry history).  Unreadable or foreign
    content yields an empty history rather than an error — the bench
    then simply starts a fresh trajectory.
    """
    target = Path(path)
    if not target.exists():
        return []
    try:
        raw = json.loads(target.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return []
    if isinstance(raw, dict) and isinstance(raw.get("entries"), list):
        return [entry for entry in raw["entries"] if isinstance(entry, dict)]
    if isinstance(raw, dict) and "cells" in raw:
        return [raw]
    return []


def regression_message(
    report: BenchReport, history: Sequence[dict], *, threshold_pct: float
) -> Optional[str]:
    """The CI regression gate: None if within bounds, else a message.

    Compares the new workers=1 throughput against the most recent
    history entry measured under the same (scale, gateway, seed).  Pass
    the history loaded *before* the run appended its own entry.  No
    comparable baseline (fresh trajectory, changed config) passes the
    gate — a threshold needs something honest to compare against.
    """
    baseline = None
    for entry in reversed(list(history)):
        if (
            entry.get("scale") == report.scale
            and entry.get("route_via_gateway") == report.route_via_gateway
            and entry.get("seed") == report.seed
            and entry.get("cells")
        ):
            baseline = entry
            break
    if baseline is None:
        return None
    old_cell = next(
        (cell for cell in baseline["cells"] if cell.get("workers") == 1), None
    )
    new_cell = next((cell for cell in report.cells if cell.workers == 1), None)
    if old_cell is None or new_cell is None:
        return None
    old_rps = old_cell.get("requests_per_second")
    if not old_rps:
        return None
    new_rps = new_cell.requests_per_second
    if new_rps >= old_rps * (1.0 - threshold_pct / 100.0):
        return None
    return (
        f"PERF REGRESSION: workers=1 throughput {new_rps:.1f} req/s is "
        f"{100.0 * (old_rps - new_rps) / old_rps:.1f}% below the committed "
        f"baseline {old_rps:.1f} req/s "
        f"(entry {baseline.get('git_sha') or '?'} at "
        f"{baseline.get('timestamp') or '?'}; threshold {threshold_pct:.0f}%)"
    )


def run_crawl_bench(
    *,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    scale: str = "standard",
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
    out: Optional[os.PathLike] = None,
    start_method: Optional[str] = None,
    repeats: int = DEFAULT_REPEATS,
) -> BenchReport:
    """Sweep worker counts over one config; verify parity against workers=1.

    The workers=1 cell runs the plain sequential path and its dataset
    digest is the parity baseline; every other cell runs through the
    parallel executor.  Each cell — including the fault/obs/supervise
    layer probes — is measured ``repeats`` times with the repeats
    interleaved across cells (see the module docstring for why), and
    parity is checked on *every* run.  When ``out`` is given the report
    is appended to the trajectory file there.
    """
    import tempfile

    from repro.faults.plan import FaultPlan
    from repro.obs.exporters import read_trace
    from repro.parallel.executor import _preferred_start_method, run_parallel
    from repro.supervise import KillSpec

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if not worker_counts or worker_counts[0] != 1:
        worker_counts = (1,) + tuple(w for w in worker_counts if w != 1)
    config = bench_config(scale, seed=seed, route_via_gateway=route_via_gateway)
    probe = Study(config)
    report = BenchReport(
        benchmark="crawl",
        scale=scale,
        seed=seed,
        route_via_gateway=route_via_gateway,
        queries=len(config.queries),
        locations=probe.locations.total(),
        treatments=len(probe.treatments),
        rounds=probe.round_count(),
        cpus=os.cpu_count() or 1,
        start_method=start_method or _preferred_start_method(),
        repeats=repeats,
    )

    walls: Dict[str, List[float]] = {}
    infos: Dict[str, dict] = {}
    baseline: List[str] = []  # the first workers=1 digest, once known

    def record(name: str, wall: float, digest: str, **info) -> None:
        if not baseline:
            baseline.append(digest)
        matched = digest == baseline[0]
        walls.setdefault(name, []).append(wall)
        if name not in infos:
            infos[name] = dict(info, digest=digest, parity=matched)
        else:
            infos[name]["parity"] = infos[name]["parity"] and matched

    def run_cell(workers: int) -> None:
        study = Study(config)
        started = time.perf_counter()
        if workers == 1:
            dataset = study.run()
        else:
            dataset = run_parallel(
                study, workers=workers, start_method=start_method
            )
        wall = time.perf_counter() - started
        record(
            f"w{workers}",
            wall,
            dataset_digest(dataset),
            pages=len(dataset),
            requests=study.stats.requests,
            failures=len(study.failures),
        )

    # Injection-off overhead: the hardened stack (FaultyNetwork with a
    # zero-rate plan + per-IP breakers) must be byte-identical to the
    # plain path, and its cost is recorded so perf history catches
    # regressions in the always-on robustness plumbing.
    def run_calm() -> None:
        study = Study(config.with_overrides(fault_plan=FaultPlan(seed=seed)))
        started = time.perf_counter()
        dataset = study.run()
        record("calm", time.perf_counter() - started, dataset_digest(dataset))

    # Tracing-off overhead: the tracer hooks stay wired even when no
    # trace is requested, so their disabled-path cost is bounded by an
    # identical sequential re-run; a traced run records what turning
    # tracing on costs and proves it never perturbs the dataset.
    def run_obs() -> None:
        study = Study(config)
        started = time.perf_counter()
        dataset = study.run()
        record("obs", time.perf_counter() - started, dataset_digest(dataset))

    def run_traced() -> None:
        handle, trace_path = tempfile.mkstemp(suffix=".trace.jsonl")
        os.close(handle)
        try:
            study = Study(config)
            started = time.perf_counter()
            dataset = study.run(trace=trace_path)
            wall = time.perf_counter() - started
            _, _, trace_summary = read_trace(trace_path)
        finally:
            os.unlink(trace_path)
        record(
            "traced",
            wall,
            dataset_digest(dataset),
            spans=trace_summary["spans"],
        )

    # Wide-event-log overhead: with no log requested the only cost is
    # the parent-side `is None` guard per flushed round; with a log the
    # builder synthesizes one event per crawl cell outside the workers.
    def run_events_off() -> None:
        study = Study(config)
        started = time.perf_counter()
        dataset = study.run()
        record(
            "events-off", time.perf_counter() - started, dataset_digest(dataset)
        )

    def run_events_on() -> None:
        from repro.obs.events import read_events

        handle, events_path = tempfile.mkstemp(suffix=".events.jsonl")
        os.close(handle)
        try:
            study = Study(config)
            started = time.perf_counter()
            dataset = study.run(events=events_path)
            wall = time.perf_counter() - started
            _, events, _ = read_events(events_path)
        finally:
            os.unlink(events_path)
        record(
            "events-on", wall, dataset_digest(dataset), events=len(events)
        )

    # Supervision overhead: heartbeats + per-round snapshot capture +
    # the parent watchdog, measured clean against the same worker count
    # unsupervised, then once more with a worker murdered at a round
    # boundary to price a full detect-respawn-reexecute cycle.
    supervise_workers = max((w for w in worker_counts if w > 1), default=2)

    def run_sup() -> None:
        study = Study(config)
        started = time.perf_counter()
        dataset = run_parallel(
            study,
            workers=supervise_workers,
            supervise=True,
            start_method=start_method,
        )
        record("sup", time.perf_counter() - started, dataset_digest(dataset))

    def run_kill() -> None:
        study = Study(config)
        started = time.perf_counter()
        dataset = run_parallel(
            study,
            workers=supervise_workers,
            supervise=True,
            start_method=start_method,
            kill_specs=(KillSpec(shard=0, ordinal=1),),
        )
        record(
            "kill",
            time.perf_counter() - started,
            dataset_digest(dataset),
            recoveries=study.supervisor.stats.recoveries,
        )

    tasks = [(lambda w=w: run_cell(w)) for w in worker_counts]
    tasks += [
        run_calm,
        run_obs,
        run_traced,
        run_events_off,
        run_events_on,
        run_sup,
        run_kill,
    ]
    for _ in range(repeats):
        for task in tasks:
            task()

    def agg(name: str) -> Tuple[float, float]:
        samples = walls[name]
        return min(samples), median(samples)

    w1_min, w1_med = agg("w1")
    for workers in worker_counts:
        cell_min, cell_med = agg(f"w{workers}")
        info = infos[f"w{workers}"]
        report.cells.append(
            BenchCell(
                workers=workers,
                wall_seconds=round(cell_min, 4),
                wall_seconds_median=round(cell_med, 4),
                repeats=repeats,
                pages=info["pages"],
                requests=info["requests"],
                failures=info["failures"],
                requests_per_second=round(info["requests"] / cell_min, 2),
                speedup_vs_workers_1=round(w1_min / cell_min, 3),
                dataset_sha256=info["digest"],
                byte_identical_to_sequential=info["parity"],
            )
        )

    calm_min, calm_med = agg("calm")
    report.fault_layer = {
        "wall_seconds": round(calm_min, 4),
        "wall_seconds_median": round(calm_med, 4),
        "overhead_pct_vs_sequential": round(
            100.0 * (calm_med - w1_med) / w1_med, 2
        ),
        "byte_identical_to_sequential": infos["calm"]["parity"],
    }

    obs_min, obs_med = agg("obs")
    traced_min, traced_med = agg("traced")
    report.obs_layer = {
        "wall_seconds": round(obs_min, 4),
        "wall_seconds_median": round(obs_med, 4),
        "overhead_pct_vs_sequential": round(
            100.0 * (obs_med - w1_med) / w1_med, 2
        ),
        "byte_identical_to_sequential": infos["obs"]["parity"],
        "traced_wall_seconds": round(traced_min, 4),
        "traced_wall_seconds_median": round(traced_med, 4),
        "traced_overhead_pct_vs_sequential": round(
            100.0 * (traced_med - w1_med) / w1_med, 2
        ),
        "trace_spans": infos["traced"]["spans"],
        "traced_byte_identical_to_sequential": infos["traced"]["parity"],
    }

    events_off_min, events_off_med = agg("events-off")
    events_on_min, events_on_med = agg("events-on")
    report.events_layer = {
        "wall_seconds": round(events_off_min, 4),
        "wall_seconds_median": round(events_off_med, 4),
        "overhead_pct_vs_sequential": round(
            100.0 * (events_off_med - w1_med) / w1_med, 2
        ),
        "byte_identical_to_sequential": infos["events-off"]["parity"],
        "enabled_wall_seconds": round(events_on_min, 4),
        "enabled_wall_seconds_median": round(events_on_med, 4),
        "enabled_overhead_pct_vs_sequential": round(
            100.0 * (events_on_med - w1_med) / w1_med, 2
        ),
        "events": infos["events-on"]["events"],
        "enabled_byte_identical_to_sequential": infos["events-on"]["parity"],
    }

    unsup_med = (
        agg(f"w{supervise_workers}")[1]
        if f"w{supervise_workers}" in walls
        else w1_med
    )
    sup_min, sup_med = agg("sup")
    kill_min, kill_med = agg("kill")
    report.supervise_layer = {
        "workers": supervise_workers,
        "wall_seconds": round(sup_min, 4),
        "wall_seconds_median": round(sup_med, 4),
        "overhead_pct_vs_unsupervised": round(
            100.0 * (sup_med - unsup_med) / unsup_med, 2
        ),
        "byte_identical_to_sequential": infos["sup"]["parity"],
        "kill_recover": {
            "wall_seconds": round(kill_min, 4),
            "wall_seconds_median": round(kill_med, 4),
            "recoveries": infos["kill"]["recoveries"],
            "byte_identical_to_sequential": infos["kill"]["parity"],
        },
    }
    if out is not None:
        report.write(out)
    return report


def profile_sequential(
    *,
    scale: str = "standard",
    seed: int = DEFAULT_STUDY_SEED,
    route_via_gateway: bool = False,
    top: int = 20,
) -> str:
    """cProfile the sequential crawl; return the top-N cumulative table."""
    import cProfile
    import pstats

    config = bench_config(scale, seed=seed, route_via_gateway=route_via_gateway)
    study = Study(config)
    profiler = cProfile.Profile()
    profiler.enable()
    study.run()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_crawl.py ...``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKER_COUNTS),
        help="comma-separated worker counts to sweep",
    )
    parser.add_argument("--scale", choices=["standard", "smoke"], default="standard")
    parser.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    parser.add_argument("--gateway", action="store_true", help="crawl via the gateway")
    parser.add_argument("--out", default="BENCH_crawl.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: smoke scale, workers 1,2, parity enforced",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also print a cProfile top-20 cumulative table of the sequential run",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repeats per cell, interleaved; wall = min, median alongside",
    )
    parser.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero if workers=1 throughput drops more than PCT%% "
        "below the latest comparable trajectory entry",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale, counts = "smoke", SMOKE_WORKER_COUNTS
    else:
        scale = args.scale
        counts = tuple(int(part) for part in args.workers.split(",") if part)
    history = load_trajectory(args.out)
    report = run_crawl_bench(
        worker_counts=counts,
        scale=scale,
        seed=args.seed,
        route_via_gateway=args.gateway,
        out=args.out,
        repeats=args.repeats,
    )
    print(report.render())
    print(f"appended to {args.out}")
    if args.profile:
        print()
        print(profile_sequential(scale=scale, seed=args.seed,
                                 route_via_gateway=args.gateway))
    if not report.parity_ok:
        print("PARITY FAILURE: parallel dataset differs from sequential",
              file=sys.stderr)
        return 1
    if args.fail_on_regress is not None:
        message = regression_message(
            report, history, threshold_pct=args.fail_on_regress
        )
        if message is not None:
            print(message, file=sys.stderr)
            return 1
    return 0
