"""The GPS-spoofing validation experiment (paper §2.2).

Issues identical controversial queries from 50 machines scattered
across the US — first with the *same* spoofed GPS coordinate (the
engine should return near-identical results: the paper measured 94%),
then with no GPS at all (the engine falls back to IP geolocation and
results diverge by vantage point).

Run:
    python examples/gps_spoofing_validation.py
"""

from repro.core.validation import run_gps_validation
from repro.geo.cuyahoga import CUYAHOGA_CENTER
from repro.queries.controversial import controversial_queries

SEED = 20151028


def main() -> None:
    queries = controversial_queries()[:10]

    print("=== 50 machines, identical spoofed GPS (Cuyahoga County) ===")
    with_gps = run_gps_validation(
        SEED, queries=queries, gps=CUYAHOGA_CENTER, machine_count=50
    )
    print(f"identical pages:     {with_gps.identical_page_fraction:.1%}")
    print(f"result agreement:    {with_gps.result_agreement.mean:.1%}  (paper: ~94%)")
    print(f"pairwise Jaccard:    {with_gps.pairwise_jaccard.mean:.3f}")

    print("\n=== same 50 machines, no GPS (IP geolocation fallback) ===")
    without_gps = run_gps_validation(SEED, queries=queries, gps=None, machine_count=50)
    print(f"identical pages:     {without_gps.identical_page_fraction:.1%}")
    print(f"result agreement:    {without_gps.result_agreement.mean:.1%}")
    print(f"pairwise Jaccard:    {without_gps.pairwise_jaccard.mean:.3f}")

    gap = with_gps.result_agreement.mean - without_gps.result_agreement.mean
    print(
        f"\nGPS dominates IP: agreement drops by {gap:.1%} when the spoofed "
        "fix is removed,\nconfirming the engine personalizes on the provided "
        "coordinates rather than the client IP."
    )


if __name__ == "__main__":
    main()
