"""Demographic-correlation analysis (paper §3.2, "Demographics").

Do counties with similar demographics receive similar search results?
The paper tested 25 features and found no correlation.  This example
collects a county-level dataset, computes pairwise SERP similarity, and
tests every demographic feature (plus raw physical distance) against
it with seeded permutation tests.

Run:
    python examples/demographics_correlation.py
"""

from repro import Study, StudyConfig, build_corpus
from repro.core.demographics_analysis import DemographicsAnalysis
from repro.queries.model import QueryCategory

SEED = 20151028


def main() -> None:
    corpus = build_corpus()
    queries = corpus.by_category(QueryCategory.LOCAL)[:12]
    config = StudyConfig.small(
        queries, seed=SEED, days=2, locations_per_granularity=10
    )
    study = Study(config)
    print("collecting county-level dataset ...")
    dataset = study.run()

    analysis = DemographicsAnalysis(
        dataset, study.regions_by_name(), category="local", granularity="county",
        seed=SEED,
    )
    print(f"{len(analysis.location_pairs())} county-location pairs\n")
    print(f"{'feature':30s} {'pearson':>8s} {'spearman':>9s} {'p':>6s}")
    correlations = analysis.all_feature_correlations(iterations=300)
    for c in sorted(correlations, key=lambda c: c.p_value):
        marker = "  <- significant at 0.05" if c.significant else ""
        print(
            f"{c.feature:30s} {c.pearson_r:+8.3f} {c.spearman_rho:+9.3f} "
            f"{c.p_value:6.3f}{marker}"
        )
    distance = analysis.distance_correlation(iterations=300)
    print(
        f"\n{distance.feature:30s} {distance.pearson_r:+8.3f} "
        f"{distance.spearman_rho:+9.3f} {distance.p_value:6.3f}"
    )

    significant = [c for c in correlations if c.p_value < 0.01]
    print(
        f"\n{len(significant)} of {len(correlations)} demographic features pass "
        "p<0.01 — consistent with the paper's null finding:\nthe engine does "
        "not use demographics to implement location-based personalization."
    )


if __name__ == "__main__":
    main()
