"""The everything script: paper-scale crawl + every artifact.

Runs the complete 240-query x 59-location x 5-day design (~141k pages,
a few minutes), streaming records to disk as they are collected, then
produces:

* the dataset (``out/dataset.jsonl.gz``),
* every figure as a text table (``out/figures.txt``),
* CSV/JSON figure data (``out/data/``),
* the one-page markdown audit (``out/REPORT.md``),
* ASCII charts for Figures 2/5/8 (``out/charts.txt``).

Run:
    python examples/full_reproduction.py [--out out] [--small]
"""

import argparse
import sys
import time
from pathlib import Path

from repro import Study, StudyConfig, StudyReport
from repro.core.datastore import IncrementalWriter
from repro.core.export import export_all
from repro.core.reportcard import generate_markdown
from repro.core.schedule import simulate_crawl_schedule


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="out", help="output directory")
    parser.add_argument(
        "--small", action="store_true", help="reduced scale (for a quick look)"
    )
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    config = StudyConfig.small(days=2) if args.small else StudyConfig()
    feasibility = simulate_crawl_schedule(config)
    print(feasibility.render(), file=sys.stderr)
    if not feasibility.feasible:
        print("schedule not feasible; aborting", file=sys.stderr)
        return 1

    study = Study(config)
    print(
        f"\ncrawling {len(config.queries)} queries x {study.locations.total()} "
        f"locations x {config.days} days ...",
        file=sys.stderr,
    )
    started = time.time()
    with IncrementalWriter(out / "dataset.jsonl.gz") as writer:
        dataset = study.run(sink=writer.write)
    print(
        f"collected {len(dataset)} pages in {time.time() - started:.0f}s "
        f"({len(study.failures)} failures, {study.stats.retries} retries)",
        file=sys.stderr,
    )

    report = StudyReport(dataset)
    figures = [
        report.render_fig2(),
        report.render_fig3(),
        report.render_fig4(),
        report.render_fig5(),
        report.render_fig6(),
        report.render_fig7(),
    ]
    figures.extend(report.render_fig8(g) for g in report.granularities())
    (out / "figures.txt").write_text("\n\n".join(figures), encoding="utf-8")

    charts = [report.render_fig2_chart(), report.render_fig5_chart()]
    charts.extend(report.render_fig8_chart(g) for g in report.granularities())
    (out / "charts.txt").write_text("\n\n".join(charts), encoding="utf-8")

    export_all(report, out / "data")
    (out / "REPORT.md").write_text(generate_markdown(dataset), encoding="utf-8")

    print(f"\nartifacts written under {out}/:", file=sys.stderr)
    for path in sorted(out.rglob("*")):
        if path.is_file():
            print(f"  {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
