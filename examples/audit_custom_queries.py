"""Audit your own query list for location-based personalization.

This is the downstream-user scenario: you have a list of search terms
and want to know how strongly each is personalized by location.  The
example builds a corpus from raw strings (the engine-side classifier
annotates them), runs the paired-control methodology at the county and
national granularities, and ranks the terms by net personalization
(personalization minus the measured noise floor).

Run:
    python examples/audit_custom_queries.py
"""

from repro import Study, StudyConfig
from repro.core.personalization import PersonalizationAnalysis
from repro.engine.classify import QueryClassifier

MY_QUERIES = [
    # establishments
    "Pharmacy",
    "Library",
    "Coffee",
    "Chipotle",
    # issues
    "Minimum Wage Increase",
    "Net Neutrality",
    # people
    "Barack Obama",
]


def main() -> None:
    classifier = QueryClassifier()
    queries = [classifier.classify(text) for text in MY_QUERIES]
    for query in queries:
        brand = " (brand)" if query.is_brand else ""
        print(f"classified {query.text!r:28s} -> {query.category.value}{brand}")

    config = StudyConfig.small(queries, days=2, locations_per_granularity=6)
    print("\ncrawling with paired controls ...")
    dataset = Study(config).run()
    analysis = PersonalizationAnalysis(dataset)

    print(f"\n{'term':28s} {'county net':>11s} {'national net':>13s}")
    rows = []
    for query in queries:
        category = query.category.value
        noise = analysis.noise.per_term(category, "county").get(query.text)
        county = analysis.per_term(category, "county").get(query.text)
        national = analysis.per_term(category, "national").get(query.text)
        county_net = max(0.0, county.edit.mean - noise.edit.mean)
        national_net = max(0.0, national.edit.mean - noise.edit.mean)
        rows.append((query.text, county_net, national_net))
    for text, county_net, national_net in sorted(rows, key=lambda r: -r[2]):
        print(f"{text:28s} {county_net:11.2f} {national_net:13.2f}")

    print(
        "\nnet = mean edit distance across location pairs minus the "
        "same-location noise floor.\nTerms near zero are effectively not "
        "location-personalized."
    )


if __name__ == "__main__":
    main()
