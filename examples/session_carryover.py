"""Why the study waits 11 minutes between queries.

The engine personalizes on searches made within the previous 10 minutes
(paper §2.2, noise control #3 — a behaviour established by the authors'
prior work).  This example measures the contamination directly: a
browser that searched "Starbucks" sees different "Coffee" results than
a fresh browser — until the wait exceeds the session window.

Run:
    python examples/session_carryover.py
"""

from repro.core.carryover import run_carryover_experiment

SEED = 20151028


def main() -> None:
    result = run_carryover_experiment(
        SEED, waits_minutes=(1.0, 3.0, 5.0, 8.0, 9.5, 11.0, 15.0)
    )
    print(result.render())
    cutoff = result.cutoff_wait()
    print(
        f"\nmethodology implication: query rounds spaced {cutoff:.0f}+ minutes "
        "apart (the paper uses 11)\nare free of history carryover even "
        "without clearing cookies; the study does both."
    )


if __name__ == "__main__":
    main()
