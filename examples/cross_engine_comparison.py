"""Cross-engine audit: the paper's "other search engines" extension.

Runs the identical study design against two engines — the card-based
"google-like" frontend of the paper and a Bing-flavoured "bingo" engine
with a different ranking policy and HTML dialect — over the *same*
synthetic web, then compares:

* how strongly each engine personalizes by location,
* how much their result pages overlap for identical probes
  (set overlap via Jaccard; order-sensitive overlap via RBO).

The crawler and parser are unchanged between engines: the parser
auto-detects the markup dialect, exactly how a real multi-engine audit
maintains per-engine selectors.

Run:
    python examples/cross_engine_comparison.py
"""

from repro import StudyConfig, build_corpus
from repro.core.crossengine import compare_engines
from repro.queries.model import QueryCategory

SEED = 20151028


def main() -> None:
    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if not q.is_brand][:8]
        + [q for q in local if q.is_brand][:3]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
        + corpus.by_category(QueryCategory.POLITICIAN)[:5]
    )
    config = StudyConfig.small(queries, seed=SEED, days=1, locations_per_granularity=6)

    print("auditing both engines with the same probes ...\n")
    comparison = compare_engines(config)
    print(comparison.render())
    print(
        f"\nmore location-personalized engine (national): "
        f"{comparison.more_personalized_engine('national')}"
    )
    print(
        "\nNote the methodology needed zero changes: only the dialect "
        "registry knew about\nthe second engine's hostname and markup."
    )


if __name__ == "__main__":
    main()
