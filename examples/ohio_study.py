"""The Ohio study: a medium-scale reproduction of every figure.

This mirrors the paper's design — all 33 local terms plus controversial
and politician samples, three granularities anchored on Ohio/Cuyahoga,
paired controls, five days — at a size that runs in about a minute.
Pass ``--full`` for the complete 240-query, 59-location study (takes a
few minutes and is what EXPERIMENTS.md reports).

Run:
    python examples/ohio_study.py [--full] [--save dataset.jsonl.gz]
"""

import argparse
import sys
import time

from repro import Study, StudyConfig, StudyReport, build_corpus
from repro.queries.model import QueryCategory


def build_config(full: bool) -> StudyConfig:
    if full:
        return StudyConfig()
    corpus = build_corpus()
    queries = (
        corpus.by_category(QueryCategory.LOCAL)  # all 33
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:20]
        + corpus.by_category(QueryCategory.POLITICIAN)[:20]
    )
    return StudyConfig.small(queries, days=5, locations_per_granularity=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale study")
    parser.add_argument("--save", help="save the dataset to this path")
    args = parser.parse_args(argv)

    config = build_config(args.full)
    study = Study(config)
    print(
        f"running study: {len(config.queries)} queries, "
        f"{study.locations.total()} locations, {config.days} days",
        file=sys.stderr,
    )
    started = time.time()
    dataset = study.run()
    print(
        f"collected {len(dataset)} pages in {time.time() - started:.0f}s "
        f"({len(study.failures)} failures)",
        file=sys.stderr,
    )
    if args.save:
        dataset.save(args.save)
        print(f"saved -> {args.save}", file=sys.stderr)

    report = StudyReport(dataset)
    print(report.render_fig2(), end="\n\n")
    print(report.render_fig3(), end="\n\n")
    print(report.render_fig4(), end="\n\n")
    print(report.render_fig5(), end="\n\n")
    print(report.render_fig6(), end="\n\n")
    print(report.render_fig7(), end="\n\n")
    for granularity in report.granularities():
        print(report.render_fig8(granularity), end="\n\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
