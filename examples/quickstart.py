"""Quickstart: run a scaled-down version of the study end to end.

Builds the whole apparatus (synthetic web, engine, crawl fleet), runs a
small crawl with paired controls at all three granularities, and prints
the noise and personalization tables (paper Figures 2 and 5).

Run:
    python examples/quickstart.py
"""

from repro import Study, StudyConfig, StudyReport, build_corpus
from repro.queries.model import QueryCategory


def main() -> None:
    corpus = build_corpus()
    # A small cross-category slice: 6 local terms (2 brands), 4
    # controversial, 4 politicians.
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if q.is_brand][:2]
        + [q for q in local if not q.is_brand][:4]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:4]
        + corpus.by_category(QueryCategory.POLITICIAN)[:4]
    )

    config = StudyConfig.small(queries, days=2, locations_per_granularity=5)
    study = Study(config)
    print(
        f"crawling: {len(config.queries)} queries x "
        f"{study.locations.total()} locations x "
        f"{config.copies_per_location} copies x {config.days} days ..."
    )
    dataset = study.run()
    print(f"collected {len(dataset)} result pages\n")

    report = StudyReport(dataset)
    print(report.render_fig2())
    print()
    print(report.render_fig5())

    # Peek at one raw comparison: the same query from two different
    # states (pick the first generic local term we actually crawled).
    query = next(q for q in queries if q.category is QueryCategory.LOCAL and not q.is_brand)
    print(f"\nExample: {query.text!r} SERPs collected at two national locations")
    locations = dataset.locations("national")[:2]
    for location in locations:
        record = dataset.get(query.text, "national", location, 0, 0)
        print(f"\n  {location}:")
        for result in record.results()[:6]:
            print(f"    {result.rank:2d}. [{result.result_type.value}] {result.url}")


if __name__ == "__main__":
    main()
