"""The study transplanted to Germany — the "other countries" extension.

Same methodology, same engine contract, different geography: Länder
centroids at national granularity, Bavarian Kreise at state
granularity, Berlin Bezirke at county granularity.  The paper's core
finding — personalization grows with distance, local queries dominate —
reproduces on the new map without touching the measurement code.

Run:
    python examples/germany_study.py
"""

from repro import Study, StudyConfig, StudyReport, build_corpus
from repro.geo.germany import GERMANY_LOCATOR, germany_study_locations
from repro.queries.model import QueryCategory

SEED = 20151028


def main() -> None:
    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if not q.is_brand][:8]
        + [q for q in local if q.is_brand][:3]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
        + corpus.by_category(QueryCategory.POLITICIAN)[:4]
    )
    config = StudyConfig.small(
        queries, seed=SEED, days=2, locations_per_granularity=6
    ).with_overrides(
        study_locations=germany_study_locations(
            SEED, land_count=8, kreis_count=8, bezirk_count=8
        ),
        locator=GERMANY_LOCATOR,
    )

    study = Study(config)
    print(
        f"crawling Germany: {len(config.queries)} queries x "
        f"{study.locations.total()} locations x {config.days} days ..."
    )
    dataset = study.run()
    print(f"collected {len(dataset)} pages\n")

    report = StudyReport(dataset)
    print(report.render_fig5())
    print()
    print(
        "Distance gradient on German geography "
        "(Berlin Bezirke -> Bavarian Kreise -> Länder):"
    )
    from repro.core.personalization import PersonalizationAnalysis

    analysis = PersonalizationAnalysis(dataset)
    for granularity, label in (
        ("county", "Bezirke (Berlin)"),
        ("state", "Kreise (Bayern)"),
        ("national", "Länder"),
    ):
        print(
            f"  {label:18s} net local personalization: "
            f"{analysis.net_edit('local', granularity):.2f}"
        )


if __name__ == "__main__":
    main()
