"""Deep-dive analyses on one collected dataset.

Beyond the paper's figures, the library answers three finer questions
about the same crawl:

1. **Where** on the page does personalization land? (positional
   volatility: the top of a local SERP is stable real estate, the
   bottom is contested)
2. Is the **suggestion strip** personalized too? (a second surface with
   zero noise — any cross-location difference is pure personalization)
3. Do the findings **replicate across worlds**? (multi-seed replication
   of the structural claims)

Run:
    python examples/deep_dive_analysis.py
"""

from repro import Study, StudyConfig, build_corpus
from repro.core.positions import PositionalAnalysis
from repro.core.replication import replicate
from repro.queries.model import QueryCategory

SEED = 20151028


def main() -> None:
    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if not q.is_brand][:8]
        + [q for q in local if q.is_brand][:3]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:4]
        + corpus.by_category(QueryCategory.POLITICIAN)[:4]
    )
    config = StudyConfig.small(queries, seed=SEED, days=2, locations_per_granularity=6)
    print("collecting ...", flush=True)
    dataset = Study(config).run()

    positions = PositionalAnalysis(dataset)
    print("\n" + positions.render_profile("local", "national"))
    split = positions.top_vs_bottom("local", "national", split=4)
    print(
        f"\ntop-4 volatility {split['top']:.2f} vs below-the-fold "
        f"{split['bottom']:.2f} — the top of the page is stable real estate."
    )

    print("\nsuggestion-strip overlap (Jaccard):")
    for category in ("local", "controversial", "politician"):
        noise = positions.suggestion_overlap(category, "county", noise=True)
        personalization = positions.suggestion_overlap(category, "national")
        print(
            f"  {category:13s} noise {noise.mean:.3f}   "
            f"national {personalization.mean:.3f}"
        )
    print(
        "suggestions carry zero noise, so any overlap below 1.0 across "
        "locations is pure personalization."
    )

    print("\nreplicating the structural findings across 3 worlds ...")
    replication = replicate([SEED + 1, SEED + 2, SEED + 3])
    print(replication.render())


if __name__ == "__main__":
    main()
