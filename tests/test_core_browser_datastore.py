"""Tests for the browser model, the network plumbing, and the datastore."""

import pytest

from repro.core.browser import Fingerprint, GeolocationOverride, MobileBrowser, Network
from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.parser import ParsedResult, ParsedSerp, ResultType, parse_serp_html
from repro.engine.datacenters import SEARCH_HOSTNAME, DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.coords import LatLon
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)


@pytest.fixture()
def harness(corpus):
    """Engine + pinned resolver + network + one crawl machine."""
    world = WebWorld(2024)
    cluster = DatacenterCluster()
    resolver = DNSResolver()
    cluster.install_into(resolver)
    resolver.pin(SEARCH_HOSTNAME, cluster[0].frontend_ip)
    engine = SearchEngine(world, cluster, GeoIPDatabase(), corpus=corpus, seed=2024)
    network = Network(resolver, engine)
    fleet = MachineFleet.crawl_fleet(count=2)
    return network, fleet


class TestGeolocationOverride:
    def test_default_is_unset(self):
        assert GeolocationOverride().get_current_position() is None

    def test_set_and_clear(self):
        override = GeolocationOverride()
        override.set(CLEVELAND)
        assert override.get_current_position() == CLEVELAND
        override.clear()
        assert override.get_current_position() is None


class TestFingerprint:
    def test_default_is_safari_8_ios(self):
        assert "iPhone OS 8_0" in Fingerprint().user_agent

    def test_fingerprints_identical_across_instances(self):
        # Paper §2.2: every treatment presents an identical fingerprint.
        assert Fingerprint() == Fingerprint()


class TestMobileBrowser:
    def test_search_returns_parsable_html(self, harness):
        network, fleet = harness
        browser = MobileBrowser("b0", fleet[0], network)
        browser.geolocation.set(CLEVELAND)
        result = browser.search("School", 10.0)
        assert result.ok
        parsed = parse_serp_html(result.html)
        assert parsed.query == "School"
        assert len(parsed.results) >= 12

    def test_gps_override_reaches_engine(self, harness):
        network, fleet = harness
        browser = MobileBrowser("b0", fleet[0], network)
        browser.geolocation.set(CLEVELAND)
        parsed = parse_serp_html(browser.search("School", 10.0).html)
        assert parsed.reported_location.lat == pytest.approx(CLEVELAND.lat, abs=1e-4)

    def test_clear_cookies_rotates_identity(self, harness):
        network, fleet = harness
        browser = MobileBrowser("b0", fleet[0], network)
        first = browser.cookie_id
        browser.clear_cookies()
        assert browser.cookie_id != first

    def test_disable_cookies(self, harness):
        network, fleet = harness
        browser = MobileBrowser("b0", fleet[0], network)
        browser.disable_cookies()
        assert browser.cookie_id is None
        assert browser.search("School", 10.0).ok

    def test_nonces_unique_per_request(self, harness):
        network, fleet = harness
        browser_a = MobileBrowser("bA", fleet[0], network)
        browser_b = MobileBrowser("bB", fleet[1], network)
        browser_a.geolocation.set(CLEVELAND)
        browser_b.geolocation.set(CLEVELAND)
        pages = set()
        for t in range(4):
            pages.add(browser_a.search("School", 10.0 + t).html)
            pages.add(browser_b.search("School", 10.0 + t).html)
        # With distinct nonces at least some pages must differ.
        assert len(pages) > 1


def _parsed(urls_types, query="q"):
    results = [
        ParsedResult(url=url, result_type=rtype, rank=i + 1)
        for i, (url, rtype) in enumerate(urls_types)
    ]
    return ParsedSerp(
        query=query, results=results, reported_location=None, datacenter=None, day=None
    )


def _record(query="q", granularity="county", location="loc-a", day=0, copy=0,
            urls_types=(("https://a.example.com/", ResultType.NORMAL),)):
    return SerpRecord.from_parsed(
        _parsed(list(urls_types), query=query),
        category="local",
        granularity=granularity,
        location_name=location,
        day=day,
        copy_index=copy,
    )


class TestSerpRecord:
    def test_from_parsed_round_trip(self):
        record = _record(
            urls_types=[
                ("https://a.example.com/", ResultType.NORMAL),
                ("https://maps.example.com/p", ResultType.MAPS),
                ("https://news.example.com/n", ResultType.NEWS),
            ]
        )
        results = record.results()
        assert [r.url for r in results] == list(record.urls)
        assert results[1].result_type is ResultType.MAPS
        assert [r.rank for r in results] == [1, 2, 3]

    def test_urls_of_type(self):
        record = _record(
            urls_types=[
                ("https://a.example.com/", ResultType.NORMAL),
                ("https://maps.example.com/p", ResultType.MAPS),
            ]
        )
        assert record.urls_of_type(ResultType.MAPS) == ["https://maps.example.com/p"]
        assert record.urls_of_type(None) == list(record.urls)

    def test_dict_round_trip(self):
        record = _record(
            urls_types=[
                ("https://a.example.com/", ResultType.NORMAL),
                ("https://maps.example.com/p", ResultType.MAPS),
            ]
        )
        assert SerpRecord.from_dict(record.to_dict()) == record

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SerpRecord(
                query="q",
                category="local",
                granularity="county",
                location_name="x",
                day=0,
                copy_index=0,
                urls=("https://a.example.com/",),
                type_codes=b"\x00\x01",
            )


class TestSerpDataset:
    def test_add_and_get(self):
        dataset = SerpDataset()
        record = _record()
        dataset.add(record)
        assert dataset.get("q", "county", "loc-a", 0, 0) == record
        assert dataset.get("q", "county", "loc-a", 0, 1) is None

    def test_duplicate_rejected(self):
        dataset = SerpDataset([_record()])
        with pytest.raises(ValueError):
            dataset.add(_record())

    def test_enumerations(self):
        dataset = SerpDataset(
            [
                _record(query="q1", location="a", day=0),
                _record(query="q1", location="a", day=1),
                _record(query="q2", location="b", day=0),
                _record(query="q2", granularity="state", location="c", day=0),
            ]
        )
        assert dataset.queries() == ["q1", "q2"]
        assert dataset.days() == [0, 1]
        assert set(dataset.granularities()) == {"county", "state"}
        assert dataset.locations("county") == ["a", "b"]

    def test_filter(self):
        dataset = SerpDataset(
            [
                _record(query="q1", location="a"),
                _record(query="q2", location="b"),
            ]
        )
        filtered = dataset.filter(query="q1")
        assert len(filtered) == 1
        assert filtered.queries() == ["q1"]

    def test_category_of(self):
        dataset = SerpDataset([_record(query="q1")])
        assert dataset.category_of("q1") == "local"
        with pytest.raises(KeyError):
            dataset.category_of("missing")

    def test_save_load_round_trip(self, tmp_path):
        dataset = SerpDataset(
            [
                _record(query="q1", location="a"),
                _record(query="q1", location="a", copy=1),
            ]
        )
        path = tmp_path / "data.jsonl"
        dataset.save(path)
        loaded = SerpDataset.load(path)
        assert len(loaded) == 2
        assert loaded.get("q1", "county", "a", 0, 1) is not None

    def test_save_load_gzip(self, tmp_path):
        dataset = SerpDataset([_record()])
        path = tmp_path / "data.jsonl.gz"
        dataset.save(path)
        assert SerpDataset.load(path).get("q", "county", "loc-a", 0, 0) is not None
