"""Tests for coordinates and great-circle geometry."""

import math

import pytest

from repro.geo.coords import (
    KM_PER_MILE,
    LatLon,
    centroid,
    destination,
    haversine_km,
    haversine_miles,
)


class TestLatLon:
    def test_valid_construction(self):
        p = LatLon(41.5, -81.7)
        assert p.lat == 41.5
        assert p.lon == -81.7

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(90.1, 0.0)
        with pytest.raises(ValueError):
            LatLon(-90.1, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 180.1)
        with pytest.raises(ValueError):
            LatLon(0.0, -180.1)

    def test_poles_and_antimeridian_are_valid(self):
        LatLon(90.0, 0.0)
        LatLon(-90.0, 0.0)
        LatLon(0.0, 180.0)
        LatLon(0.0, -180.0)

    def test_hashable_and_equal(self):
        assert LatLon(1.0, 2.0) == LatLon(1.0, 2.0)
        assert len({LatLon(1.0, 2.0), LatLon(1.0, 2.0)}) == 1

    def test_distance_methods_agree_with_functions(self):
        a, b = LatLon(41.5, -81.7), LatLon(39.96, -83.0)
        assert a.distance_km(b) == haversine_km(a, b)
        assert a.distance_miles(b) == haversine_miles(a, b)


class TestHaversine:
    def test_zero_distance(self):
        p = LatLon(40.0, -80.0)
        assert haversine_km(p, p) == 0.0

    def test_symmetry(self):
        a, b = LatLon(42.36, -71.06), LatLon(41.88, -87.63)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_known_distance_cleveland_columbus(self):
        cleveland = LatLon(41.4993, -81.6944)
        columbus = LatLon(39.9612, -82.9988)
        # Real-world distance is about 203 km.
        assert haversine_km(cleveland, columbus) == pytest.approx(203, rel=0.03)

    def test_one_degree_latitude_is_about_111_km(self):
        a, b = LatLon(40.0, -80.0), LatLon(41.0, -80.0)
        assert haversine_km(a, b) == pytest.approx(111.2, rel=0.01)

    def test_miles_conversion(self):
        a, b = LatLon(40.0, -80.0), LatLon(41.0, -80.0)
        assert haversine_miles(a, b) == pytest.approx(
            haversine_km(a, b) / KM_PER_MILE
        )

    def test_antipodal_is_half_circumference(self):
        a, b = LatLon(0.0, 0.0), LatLon(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(math.pi * 6371.0088, rel=1e-6)


class TestDestination:
    def test_zero_distance_is_identity(self):
        p = LatLon(41.0, -81.0)
        q = destination(p, 45.0, 0.0)
        assert q.lat == pytest.approx(p.lat)
        assert q.lon == pytest.approx(p.lon)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            destination(LatLon(0, 0), 0.0, -1.0)

    def test_round_trip_distance(self):
        origin = LatLon(41.43, -81.67)
        for bearing in (0.0, 90.0, 180.0, 270.0, 37.0):
            target = destination(origin, bearing, 10.0)
            assert haversine_km(origin, target) == pytest.approx(10.0, rel=1e-6)

    def test_north_increases_latitude(self):
        origin = LatLon(41.0, -81.0)
        assert destination(origin, 0.0, 5.0).lat > origin.lat

    def test_east_increases_longitude(self):
        origin = LatLon(41.0, -81.0)
        assert destination(origin, 90.0, 5.0).lon > origin.lon

    def test_longitude_normalised(self):
        origin = LatLon(0.0, 179.9)
        target = destination(origin, 90.0, 100.0)
        assert -180.0 <= target.lon <= 180.0


class TestCentroid:
    def test_single_point(self):
        p = LatLon(40.0, -80.0)
        c = centroid([p])
        assert c.lat == pytest.approx(p.lat)
        assert c.lon == pytest.approx(p.lon)

    def test_symmetric_pair(self):
        c = centroid([LatLon(40.0, -80.0), LatLon(42.0, -80.0)])
        assert c.lat == pytest.approx(41.0, abs=0.01)
        assert c.lon == pytest.approx(-80.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_antipodal_rejected(self):
        with pytest.raises(ValueError):
            centroid([LatLon(0.0, 0.0), LatLon(0.0, 180.0)])

    def test_antimeridian_handled(self):
        c = centroid([LatLon(0.0, 179.0), LatLon(0.0, -179.0)])
        assert abs(c.lon) == pytest.approx(180.0, abs=0.01)
