"""Tests for the query corpus (paper §2.1)."""

import pytest

from repro.queries.controversial import (
    CONTROVERSIAL_TERMS,
    TABLE1_TERMS,
    controversial_queries,
)
from repro.queries.corpus import QueryCorpus, build_corpus
from repro.queries.local import (
    LOCAL_BRAND_TERMS,
    LOCAL_GENERIC_TERMS,
    LOCAL_TERMS,
    local_queries,
)
from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.queries.politicians import politician_queries


class TestQueryModel:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Query(text="   ", category=QueryCategory.LOCAL)

    def test_politician_requires_scope(self):
        with pytest.raises(ValueError):
            Query(text="Jane Doe", category=QueryCategory.POLITICIAN)

    def test_non_politician_must_not_set_scope(self):
        with pytest.raises(ValueError):
            Query(
                text="Coffee",
                category=QueryCategory.LOCAL,
                politician_scope=PoliticianScope.STATE,
            )

    def test_brand_flag_only_for_local(self):
        with pytest.raises(ValueError):
            Query(text="Gay Marriage", category=QueryCategory.CONTROVERSIAL, is_brand=True)

    def test_key_is_case_insensitive(self):
        a = Query(text="Coffee", category=QueryCategory.LOCAL)
        b = Query(text="coffee", category=QueryCategory.LOCAL)
        assert a.key == b.key

    def test_category_labels(self):
        assert QueryCategory.LOCAL.label == "Local"
        assert QueryCategory.POLITICIAN.label == "Politicians"


class TestLocalQueries:
    def test_thirty_three_terms(self):
        assert len(LOCAL_TERMS) == 33
        assert len(local_queries()) == 33

    def test_brand_and_generic_partition(self):
        assert set(LOCAL_BRAND_TERMS).isdisjoint(LOCAL_GENERIC_TERMS)
        assert len(LOCAL_BRAND_TERMS) + len(LOCAL_GENERIC_TERMS) == 33

    def test_paper_terms_present(self):
        for term in ("Starbucks", "KFC", "School", "Airport", "Polling Place"):
            assert term in LOCAL_TERMS

    def test_brand_annotation(self):
        by_text = {q.text: q for q in local_queries()}
        assert by_text["Starbucks"].is_brand
        assert not by_text["Hospital"].is_brand


class TestControversialQueries:
    def test_eighty_seven_terms(self):
        assert len(CONTROVERSIAL_TERMS) == 87
        assert len(controversial_queries()) == 87

    def test_table1_terms_all_present(self):
        assert len(TABLE1_TERMS) == 18
        for term in TABLE1_TERMS:
            assert term in CONTROVERSIAL_TERMS

    def test_highlighted_terms_present(self):
        # §3.2 names these as the most personalized controversial terms.
        for term in ("Health", "Republican Party", "Politics"):
            assert term in CONTROVERSIAL_TERMS

    def test_no_duplicates(self):
        lowered = [t.lower() for t in CONTROVERSIAL_TERMS]
        assert len(set(lowered)) == len(lowered)


class TestPoliticianQueries:
    def test_one_hundred_twenty(self):
        assert len(politician_queries()) == 120

    def test_scope_composition_matches_paper(self):
        queries = politician_queries()
        by_scope = {}
        for q in queries:
            by_scope.setdefault(q.politician_scope, []).append(q)
        assert len(by_scope[PoliticianScope.COUNTY]) == 11
        assert len(by_scope[PoliticianScope.STATE]) == 53
        assert len(by_scope[PoliticianScope.FEDERAL_OHIO]) == 18
        assert len(by_scope[PoliticianScope.FEDERAL_OTHER]) == 36
        assert len(by_scope[PoliticianScope.NATIONAL]) == 2

    def test_biden_and_obama_present(self):
        texts = {q.text for q in politician_queries()}
        assert "Joe Biden" in texts
        assert "Barack Obama" in texts

    def test_papers_ambiguous_names_flagged(self):
        by_text = {q.text: q for q in politician_queries()}
        assert by_text["Bill Johnson"].is_common_name
        assert by_text["Tim Ryan"].is_common_name
        assert by_text["Bill Johnson"].home_state == "Ohio"

    def test_unique_names(self):
        texts = [q.text for q in politician_queries()]
        assert len(set(texts)) == len(texts)

    def test_deterministic_roster(self):
        assert [q.text for q in politician_queries()] == [
            q.text for q in politician_queries()
        ]

    def test_ohio_scopes_have_ohio_home_state(self):
        for q in politician_queries():
            if q.politician_scope in (
                PoliticianScope.COUNTY,
                PoliticianScope.STATE,
                PoliticianScope.FEDERAL_OHIO,
            ):
                assert q.home_state == "Ohio"

    def test_national_figures_have_no_home_state(self):
        for q in politician_queries():
            if q.politician_scope is PoliticianScope.NATIONAL:
                assert q.home_state is None


class TestCorpus:
    def test_full_corpus_is_240(self, corpus):
        assert len(corpus) == 240

    def test_category_counts_match_paper(self, corpus):
        counts = corpus.counts()
        assert counts[QueryCategory.LOCAL] == 33
        assert counts[QueryCategory.CONTROVERSIAL] == 87
        assert counts[QueryCategory.POLITICIAN] == 120

    def test_lookup_case_insensitive(self, corpus):
        assert corpus.get("starbucks") is not None
        assert corpus.get("STARBUCKS").is_brand

    def test_lookup_missing_returns_none(self, corpus):
        assert corpus.get("quantum gravity") is None

    def test_duplicates_rejected(self):
        q = Query(text="Coffee", category=QueryCategory.LOCAL)
        with pytest.raises(ValueError):
            QueryCorpus(queries=[q, q])

    def test_iteration_matches_length(self, corpus):
        assert len(list(corpus)) == len(corpus)
