"""Tests for the parallel crawl executor (repro.parallel).

The contract under test: sharding the lock-step study across worker
processes is *invisible* in the output — the merged dataset serialises
to the same bytes as the sequential run, stats counters are equal, and
the failure list is equal, for every worker count and routing mode.
"""

import json

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import CrawlStats, Study
from repro.engine.calibration import EngineCalibration
from repro.parallel import dataset_digest, plan_shards, run_parallel
from repro.queries.corpus import build_corpus


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    # machine_count=5 < treatment count so browsers share crawl
    # machines (and therefore client IPs) — the coupling the
    # machine-granular shard plan exists to preserve.
    config = StudyConfig.small(
        _queries(), days=1, locations_per_granularity=2
    ).with_overrides(machine_count=5)
    return config.with_overrides(**overrides) if overrides else config


def _serialized(dataset) -> str:
    return "".join(json.dumps(record.to_dict()) + "\n" for record in dataset)


class TestShardPlan:
    def test_covers_every_treatment_exactly_once(self):
        plan = plan_shards(treatment_count=12, machine_count=5, workers=3)
        flat = sorted(index for shard in plan.assignments for index in shard)
        assert flat == list(range(12))

    def test_machines_never_span_workers(self):
        plan = plan_shards(treatment_count=23, machine_count=7, workers=4)
        owner = {}
        for worker, shard in enumerate(plan.assignments):
            for index in shard:
                machine = index % 7
                assert owner.setdefault(machine, worker) == worker

    def test_worker_count_clamped_to_occupied_machines(self):
        plan = plan_shards(treatment_count=3, machine_count=2, workers=8)
        assert plan.workers == 2
        plan = plan_shards(treatment_count=1, machine_count=44, workers=8)
        assert plan.workers == 1

    def test_shards_ascending(self):
        plan = plan_shards(treatment_count=30, machine_count=5, workers=2)
        for shard in plan.assignments:
            assert list(shard) == sorted(shard)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(treatment_count=0, machine_count=1, workers=1)
        with pytest.raises(ValueError):
            plan_shards(treatment_count=1, machine_count=1, workers=0)


class TestByteParity:
    @pytest.mark.parametrize("route_via_gateway", [False, True])
    def test_parallel_dataset_is_byte_identical(self, route_via_gateway):
        config = _config(route_via_gateway=route_via_gateway)
        sequential = Study(config).run()
        expected = _serialized(sequential)
        for workers in (1, 2, 4):
            parallel = run_parallel(Study(config), workers=workers)
            assert _serialized(parallel) == expected, (
                f"workers={workers} gateway={route_via_gateway}"
            )

    def test_run_workers_api_matches_sequential(self):
        config = _config()
        expected = dataset_digest(Study(config).run())
        assert dataset_digest(Study(config).run(workers=2)) == expected

    def test_parity_with_unpinned_dns(self):
        config = _config(pin_datacenter=False)
        expected = dataset_digest(Study(config).run())
        assert dataset_digest(run_parallel(Study(config), workers=3)) == expected

    def test_parity_under_rate_limiting(self):
        # Two machines x six browsers each, three admits per window:
        # every round produces CAPTCHAs and retries, and with retries
        # exhausted some treatments fail — all of it must shard cleanly.
        config = _config(
            machine_count=2,
            calibration=EngineCalibration(ratelimit_max_per_minute=3),
        )
        seq_study = Study(config)
        expected = _serialized(seq_study.run())
        assert seq_study.stats.captchas > 0
        par_study = Study(config)
        assert _serialized(run_parallel(par_study, workers=2)) == expected
        assert par_study.failures == seq_study.failures

    def test_requires_fresh_study(self):
        config = _config()
        study = Study(config)
        study.run()
        with pytest.raises(ValueError):
            run_parallel(study, workers=2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            Study(_config()).run(workers=0)


class TestMergedState:
    def test_stats_counters_equal_sequential(self):
        config = _config()
        seq_study = Study(config)
        seq_study.run()
        par_study = Study(config)
        run_parallel(par_study, workers=3)
        assert par_study.stats == seq_study.stats
        assert par_study.stats.pages > 0

    def test_stats_merge_is_associative_sum(self):
        total = CrawlStats()
        total.merge(CrawlStats(requests=3, retries=1, captchas=1, pages=2))
        total.merge(CrawlStats(requests=5, retries=0, captchas=0, pages=5))
        assert total == CrawlStats(requests=8, retries=1, captchas=1, pages=7)

    def test_sink_receives_records_in_canonical_order(self):
        config = _config()
        streamed = []
        dataset = run_parallel(Study(config), workers=2, sink=streamed.append)
        assert streamed == list(dataset)


class TestChaosParity:
    """Byte parity must survive the fault layer: injected faults,
    retries, and per-IP breakers are all keyed on worker-independent
    state, so a chaos-plan run shards without drift."""

    def test_chaos_plan_parity_across_workers(self):
        from repro.faults.plan import FaultPlan

        config = _config(fault_plan=FaultPlan.named("chaos"), max_retries=2)
        seq_study = Study(config)
        expected = _serialized(seq_study.run())
        par_study = Study(config)
        dataset = run_parallel(par_study, workers=2)
        assert _serialized(dataset) == expected
        assert par_study.stats == seq_study.stats
        assert par_study.failures == seq_study.failures
        assert par_study.fault_stats == seq_study.fault_stats
        assert par_study.fault_stats.unaccounted() == {}

    def test_chaos_plan_parity_three_workers(self):
        from repro.faults.plan import FaultPlan

        config = _config(fault_plan=FaultPlan.named("flaky-network"))
        expected = _serialized(Study(config).run())
        assert _serialized(run_parallel(Study(config), workers=3)) == expected
