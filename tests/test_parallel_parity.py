"""Tests for the parallel crawl executor (repro.parallel).

The contract under test: sharding the lock-step study across worker
processes is *invisible* in the output — the merged dataset serialises
to the same bytes as the sequential run, stats counters are equal, and
the failure list is equal, for every worker count and routing mode.
"""

import json
import multiprocessing

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import CrawlStats, Study
from repro.engine.calibration import EngineCalibration
from repro.parallel import dataset_digest, plan_shards, run_parallel
from repro.queries.corpus import build_corpus


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    # machine_count=5 < treatment count so browsers share crawl
    # machines (and therefore client IPs) — the coupling the
    # machine-granular shard plan exists to preserve.
    config = StudyConfig.small(
        _queries(), days=1, locations_per_granularity=2
    ).with_overrides(machine_count=5)
    return config.with_overrides(**overrides) if overrides else config


def _serialized(dataset) -> str:
    return "".join(json.dumps(record.to_dict()) + "\n" for record in dataset)


class TestShardPlan:
    def test_covers_every_treatment_exactly_once(self):
        plan = plan_shards(treatment_count=12, machine_count=5, workers=3)
        flat = sorted(index for shard in plan.assignments for index in shard)
        assert flat == list(range(12))

    def test_machines_never_span_workers(self):
        plan = plan_shards(treatment_count=23, machine_count=7, workers=4)
        owner = {}
        for worker, shard in enumerate(plan.assignments):
            for index in shard:
                machine = index % 7
                assert owner.setdefault(machine, worker) == worker

    def test_worker_count_clamped_to_occupied_machines(self):
        plan = plan_shards(treatment_count=3, machine_count=2, workers=8)
        assert plan.workers == 2
        plan = plan_shards(treatment_count=1, machine_count=44, workers=8)
        assert plan.workers == 1

    def test_shards_ascending(self):
        plan = plan_shards(treatment_count=30, machine_count=5, workers=2)
        for shard in plan.assignments:
            assert list(shard) == sorted(shard)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(treatment_count=0, machine_count=1, workers=1)
        with pytest.raises(ValueError):
            plan_shards(treatment_count=1, machine_count=1, workers=0)


class TestByteParity:
    @pytest.mark.parametrize("route_via_gateway", [False, True])
    def test_parallel_dataset_is_byte_identical(self, route_via_gateway):
        config = _config(route_via_gateway=route_via_gateway)
        sequential = Study(config).run()
        expected = _serialized(sequential)
        for workers in (1, 2, 4):
            parallel = run_parallel(Study(config), workers=workers)
            assert _serialized(parallel) == expected, (
                f"workers={workers} gateway={route_via_gateway}"
            )

    def test_run_workers_api_matches_sequential(self):
        config = _config()
        expected = dataset_digest(Study(config).run())
        assert dataset_digest(Study(config).run(workers=2)) == expected

    def test_parity_with_unpinned_dns(self):
        config = _config(pin_datacenter=False)
        expected = dataset_digest(Study(config).run())
        assert dataset_digest(run_parallel(Study(config), workers=3)) == expected

    def test_parity_under_rate_limiting(self):
        # Two machines x six browsers each, three admits per window:
        # every round produces CAPTCHAs and retries, and with retries
        # exhausted some treatments fail — all of it must shard cleanly.
        config = _config(
            machine_count=2,
            calibration=EngineCalibration(ratelimit_max_per_minute=3),
        )
        seq_study = Study(config)
        expected = _serialized(seq_study.run())
        assert seq_study.stats.captchas > 0
        par_study = Study(config)
        assert _serialized(run_parallel(par_study, workers=2)) == expected
        assert par_study.failures == seq_study.failures

    def test_requires_fresh_study(self):
        config = _config()
        study = Study(config)
        study.run()
        with pytest.raises(ValueError):
            run_parallel(study, workers=2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            Study(_config()).run(workers=0)


class TestMergedState:
    def test_stats_counters_equal_sequential(self):
        config = _config()
        seq_study = Study(config)
        seq_study.run()
        par_study = Study(config)
        run_parallel(par_study, workers=3)
        assert par_study.stats == seq_study.stats
        assert par_study.stats.pages > 0

    def test_stats_merge_is_associative_sum(self):
        total = CrawlStats()
        total.merge(CrawlStats(requests=3, retries=1, captchas=1, pages=2))
        total.merge(CrawlStats(requests=5, retries=0, captchas=0, pages=5))
        assert total == CrawlStats(requests=8, retries=1, captchas=1, pages=7)

    def test_sink_receives_records_in_canonical_order(self):
        config = _config()
        streamed = []
        dataset = run_parallel(Study(config), workers=2, sink=streamed.append)
        assert streamed == list(dataset)


class TestChaosParity:
    """Byte parity must survive the fault layer: injected faults,
    retries, and per-IP breakers are all keyed on worker-independent
    state, so a chaos-plan run shards without drift."""

    def test_chaos_plan_parity_across_workers(self):
        from repro.faults.plan import FaultPlan

        config = _config(fault_plan=FaultPlan.named("chaos"), max_retries=2)
        seq_study = Study(config)
        expected = _serialized(seq_study.run())
        par_study = Study(config)
        dataset = run_parallel(par_study, workers=2)
        assert _serialized(dataset) == expected
        assert par_study.stats == seq_study.stats
        assert par_study.failures == seq_study.failures
        assert par_study.fault_stats == seq_study.fault_stats
        assert par_study.fault_stats.unaccounted() == {}

    def test_chaos_plan_parity_three_workers(self):
        from repro.faults.plan import FaultPlan

        config = _config(fault_plan=FaultPlan.named("flaky-network"))
        expected = _serialized(Study(config).run())
        assert _serialized(run_parallel(Study(config), workers=3)) == expected


class TestBatchPathParity:
    """The batched SERP hot path (round prewarm + vectorized fast path +
    string-scan parser) must be byte-invisible: a run with every fast
    path disabled is the parity oracle for the default run."""

    def test_fast_path_off_run_is_byte_identical(self):
        config = _config()
        reference = Study(config)
        reference.engine.ranker.fast_path = False
        expected = _serialized(reference.run())
        assert _serialized(Study(config).run()) == expected

    @pytest.mark.parametrize("route_via_gateway", [False, True])
    def test_fast_path_off_oracle_matches_parallel(self, route_via_gateway):
        from repro.faults.plan import FaultPlan

        config = _config(
            route_via_gateway=route_via_gateway,
            fault_plan=FaultPlan.named("chaos"),
            max_retries=2,
        )
        reference = Study(config)
        reference.engine.ranker.fast_path = False
        expected = _serialized(reference.run())
        for workers in (1, 2, 4):
            parallel = run_parallel(Study(config), workers=workers)
            assert _serialized(parallel) == expected, (
                f"workers={workers} gateway={route_via_gateway}"
            )

    def test_parser_fast_scan_off_is_byte_identical(self):
        from repro.core.parser import set_fast_scan

        config = _config()
        expected = _serialized(Study(config).run())
        previous = set_fast_scan(False)
        try:
            assert _serialized(Study(config).run()) == expected
        finally:
            set_fast_scan(previous)


class TestZeroRebuildWorkers:
    """Workers inherit the parent's built-and-warmed study; nobody
    rebuilds from config unless the study cannot pickle under spawn —
    and the fallback is output-invisible when it happens."""

    def test_fork_workers_inherit_without_rebuild(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        config = _config()
        expected = dataset_digest(Study(config).run())
        study = Study(config)
        dataset = run_parallel(study, workers=2, start_method="fork")
        assert dataset_digest(dataset) == expected
        assert study.worker_rebuilds == 0

    def test_spawn_workers_receive_built_study(self):
        config = _config()
        expected = dataset_digest(Study(config).run())
        study = Study(config)
        dataset = run_parallel(study, workers=2, start_method="spawn")
        assert dataset_digest(dataset) == expected
        assert study.worker_rebuilds == 0

    def test_unpicklable_study_falls_back_to_config_rebuild(self):
        config = _config()
        expected = dataset_digest(Study(config).run())
        study = Study(config)
        study.engine.ranker._poison = lambda: None  # closures do not pickle
        dataset = run_parallel(study, workers=2, start_method="spawn")
        assert dataset_digest(dataset) == expected
        assert study.worker_rebuilds == 2

    def test_worker_main_reports_rebuild_path(self):
        from repro.parallel.executor import _worker_main

        class Sink:
            def __init__(self):
                self.messages = []

            def put(self, message):
                self.messages.append(message)

        config = _config()
        study = Study(config)
        study.prefork_warmup()
        plan = plan_shards(len(study.treatments), len(study.fleet), 2)

        inherited = Sink()
        _worker_main(0, study, plan.assignments[0], inherited)
        done = inherited.messages[-1]
        assert done[0] == "done"
        assert done[4] is False

        rebuilt = Sink()
        _worker_main(1, config, plan.assignments[1], rebuilt)
        done = rebuilt.messages[-1]
        assert done[0] == "done"
        assert done[4] is True

    def test_prefork_warmup_is_output_invisible(self):
        config = _config()
        expected = _serialized(Study(config).run())
        warmed = Study(config)
        info = warmed.prefork_warmup()
        assert info["bundles"] > 0
        assert info["skew_vecs"] > 0
        assert _serialized(warmed.run()) == expected

    def test_prefork_warmup_predicts_maps_cards_exactly(self):
        # The maps gate keys on (query, nonce) and nonces are a pure
        # function of the schedule, so on a clean run the warmup's
        # schedule walk must warm exactly the cards the crawl asks for
        # lazily — no misses, nothing wasted.
        config = _config()
        baseline = Study(config)
        baseline.run()
        assert baseline.stats.retries == 0  # clean run: prediction is exact
        lazily_needed = set(baseline.engine.ranker._maps_cache)
        assert lazily_needed
        warmed = Study(config)
        warmed.prefork_warmup()
        assert set(warmed.engine.ranker._maps_cache) == lazily_needed
