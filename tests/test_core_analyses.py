"""Tests for the analysis layer over the collected small-study dataset.

These run against the session-scoped ``small_dataset`` fixture — a real
end-to-end crawl (browser → HTML → parser → records) at reduced scale.
"""

import pytest

from repro.core.comparisons import (
    compare_records,
    iter_noise_pairs,
    iter_treatment_pairs,
)
from repro.core.consistency import ConsistencyAnalysis
from repro.core.noise import NoiseAnalysis
from repro.core.parser import ResultType
from repro.core.personalization import PersonalizationAnalysis
from repro.core.report import StudyReport


@pytest.fixture(scope="module")
def noise(small_dataset):
    return NoiseAnalysis(small_dataset)


@pytest.fixture(scope="module")
def personalization(small_dataset):
    return PersonalizationAnalysis(small_dataset)


class TestDatasetShape:
    def test_every_expected_record_collected(self, small_dataset, small_config):
        expected = (
            len(small_config.queries)
            * (small_config.state_count + small_config.county_count + small_config.district_count)
            * small_config.copies_per_location
            * small_config.days
        )
        assert len(small_dataset) == expected

    def test_all_categories_present(self, small_dataset):
        assert set(small_dataset.categories()) == {
            "local",
            "controversial",
            "politician",
        }

    def test_pages_have_12_to_22_results(self, small_dataset):
        for record in small_dataset:
            assert 12 <= len(record.urls) <= 22

    def test_copies_present(self, small_dataset):
        assert small_dataset.copies() == [0, 1]


class TestComparisons:
    def test_compare_rejects_different_queries(self, small_dataset):
        records = list(small_dataset)
        a = records[0]
        b = next(r for r in records if r.query != a.query)
        with pytest.raises(ValueError):
            compare_records(a, b)

    def test_self_comparison_is_identity(self, small_dataset):
        record = next(iter(small_dataset))
        comparison = compare_records(record, record)
        assert comparison.jaccard == 1.0
        assert comparison.edit == 0

    def test_noise_pairs_same_location(self, small_dataset):
        for comparison in iter_noise_pairs(small_dataset, category="local"):
            assert comparison.location_a == comparison.location_b

    def test_treatment_pairs_different_locations(self, small_dataset):
        for comparison in iter_treatment_pairs(
            small_dataset, category="local", granularity="county"
        ):
            assert comparison.location_a != comparison.location_b

    def test_treatment_pair_count(self, small_dataset, small_config):
        n = small_config.district_count
        pairs_per_query_day = n * (n - 1) // 2
        local_queries = len(small_dataset.queries(category="local"))
        comparisons = list(
            iter_treatment_pairs(small_dataset, category="local", granularity="county")
        )
        assert len(comparisons) == pairs_per_query_day * local_queries * small_config.days

    def test_edit_other_nonnegative(self, small_dataset):
        for comparison in iter_treatment_pairs(
            small_dataset, category="local", granularity="national"
        ):
            assert comparison.edit_other >= 0


class TestNoiseFindings:
    def test_local_noisier_than_other_categories(self, noise):
        # Paper Fig. 2: local queries are much noisier.
        for granularity in ("county", "state", "national"):
            local = noise.cell("local", granularity).edit.mean
            controversial = noise.cell("controversial", granularity).edit.mean
            politician = noise.cell("politician", granularity).edit.mean
            assert local > controversial + 0.5
            assert local > politician + 0.5

    def test_noise_uniform_across_granularities(self, noise):
        # Paper Fig. 2: "noise is independent of location".
        values = [
            noise.cell("local", granularity).edit.mean
            for granularity in ("county", "state", "national")
        ]
        assert max(values) - min(values) < 1.5

    def test_local_noise_jaccard_below_one(self, noise):
        assert noise.cell("local", "county").jaccard.mean < 0.99

    def test_maps_share_of_local_noise(self, noise):
        # Paper: Maps cause ~25% of local-query noise.
        share = noise.cell("local", "county").type_share(ResultType.MAPS)
        assert 0.10 < share < 0.45

    def test_news_causes_no_local_noise(self, noise):
        assert noise.cell("local", "county").type_share(ResultType.NEWS) == 0.0

    def test_per_term_brands_less_noisy(self, noise, corpus):
        cells = noise.per_term("local", "county")
        brand_terms = [t for t in cells if corpus.get(t) and corpus.get(t).is_brand]
        generic_terms = [t for t in cells if corpus.get(t) and not corpus.get(t).is_brand]
        brand_mean = sum(cells[t].edit.mean for t in brand_terms) / len(brand_terms)
        generic_mean = sum(cells[t].edit.mean for t in generic_terms) / len(generic_terms)
        assert brand_mean < generic_mean

    def test_empty_cell_raises(self, small_dataset):
        with pytest.raises(ValueError):
            NoiseAnalysis(small_dataset).cell("local", "continental")


class TestPersonalizationFindings:
    def test_local_most_personalized(self, personalization):
        # Paper Fig. 5 takeaway 1.
        for granularity in ("county", "state", "national"):
            local = personalization.cell("local", granularity).edit.mean
            controversial = personalization.cell("controversial", granularity).edit.mean
            politician = personalization.cell("politician", granularity).edit.mean
            assert local > controversial + 2
            assert local > politician + 2

    def test_personalization_grows_with_distance(self, personalization):
        # Paper Fig. 5 takeaway 2.
        county = personalization.cell("local", "county").edit.mean
        state = personalization.cell("local", "state").edit.mean
        national = personalization.cell("local", "national").edit.mean
        assert county < state < national

    def test_county_to_state_jump_is_large(self, personalization):
        # "The change is especially high between the county- and
        # state-levels."
        county = personalization.cell("local", "county").edit.mean
        state = personalization.cell("local", "state").edit.mean
        national = personalization.cell("local", "national").edit.mean
        assert (state - county) > (national - state)

    def test_local_personalization_clears_noise_floor(self, personalization):
        for granularity in ("county", "state", "national"):
            assert personalization.net_edit("local", granularity) > 2

    def test_controversial_and_politicians_near_noise(self, personalization):
        # Paper: differences "very close to the noise-levels".
        for category in ("controversial", "politician"):
            for granularity in ("county", "state"):
                assert personalization.net_edit(category, granularity) < 1.0

    def test_jaccard_drops_with_distance(self, personalization):
        county = personalization.cell("local", "county").jaccard.mean
        national = personalization.cell("local", "national").jaccard.mean
        assert county > national

    def test_maps_share_of_local_personalization(self, personalization):
        # Paper Fig. 7: Maps explain 18-27% of local differences —
        # i.e. the majority of changes hit "normal" results.
        for granularity in ("county", "state", "national"):
            share = personalization.cell("local", granularity).type_share(ResultType.MAPS)
            assert 0.10 < share < 0.40

    def test_type_decomposition_sums_to_total(self, personalization):
        cell = personalization.cell("local", "national")
        parts = personalization.type_decomposition("local", "national")
        assert parts["maps"] + parts["news"] + parts["other"] == pytest.approx(
            cell.edit.mean, rel=0.15
        )

    def test_brands_less_personalized_than_generics(self, personalization, corpus):
        cells = personalization.per_term("local", "national")
        brand_terms = [t for t in cells if corpus.get(t) and corpus.get(t).is_brand]
        generic_terms = [t for t in cells if corpus.get(t) and not corpus.get(t).is_brand]
        brand_mean = sum(cells[t].edit.mean for t in brand_terms) / len(brand_terms)
        generic_mean = sum(cells[t].edit.mean for t in generic_terms) / len(generic_terms)
        assert brand_mean < generic_mean - 2


class TestConsistency:
    def test_series_shape(self, small_dataset, small_config):
        analysis = ConsistencyAnalysis(small_dataset)
        series = analysis.series("county")
        assert len(series.days) == small_config.days
        assert len(series.per_location) == small_config.district_count - 1
        assert len(series.noise_floor) == small_config.days

    def test_noise_floor_below_distant_locations(self, small_dataset):
        series = ConsistencyAnalysis(small_dataset).series("national")
        floor = sum(series.noise_floor) / len(series.noise_floor)
        means = series.location_means()
        above = sum(1 for value in means.values() if value > floor)
        assert above >= len(means) * 0.8

    def test_stability_over_days(self, small_dataset):
        # Paper Fig. 8: "the amount of personalization is stable over time".
        analysis = ConsistencyAnalysis(small_dataset)
        for granularity in ("state", "national"):
            assert analysis.day_to_day_stability(granularity) < 2.0

    def test_unknown_baseline_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            ConsistencyAnalysis(small_dataset).series("county", baseline="nowhere")

    def test_unknown_granularity_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            ConsistencyAnalysis(small_dataset).series("continental")


class TestReport:
    def test_fig2_rows_cover_grid(self, small_dataset):
        report = StudyReport(small_dataset)
        rows = report.fig2_rows()
        assert len(rows) == 9  # 3 granularities x 3 categories

    def test_fig5_rows_include_noise_floor(self, small_dataset):
        report = StudyReport(small_dataset)
        for row in report.fig5_rows():
            assert "noise_edit" in row
            assert row["pairs"] > 0

    def test_fig3_sorted_by_national_noise(self, small_dataset):
        report = StudyReport(small_dataset)
        rows = report.fig3_rows()
        nationals = [r["national"] for r in rows]
        assert nationals == sorted(nationals)

    def test_fig7_totals_positive_for_local(self, small_dataset):
        report = StudyReport(small_dataset)
        local_rows = [r for r in report.fig7_rows() if r["category"] == "local"]
        assert all(r["total"] > 0 for r in local_rows)

    def test_render_functions_return_tables(self, small_dataset):
        report = StudyReport(small_dataset)
        for text in (
            report.render_fig2(),
            report.render_fig3(),
            report.render_fig4(),
            report.render_fig5(),
            report.render_fig6(),
            report.render_fig7(),
            report.render_fig8("county"),
        ):
            assert "\n" in text
            assert "Figure" in text
