"""Tests for churn analysis, figure export, and incremental persistence."""

import csv
import io
import json

import pytest

from repro.core.churn import ChurnAnalysis
from repro.core.datastore import IncrementalWriter, SerpDataset
from repro.core.export import export_all, export_figure_csv, export_figure_json
from repro.core.report import StudyReport


class TestChurnAnalysis:
    @pytest.fixture(scope="class")
    def churn(self, small_dataset):
        return ChurnAnalysis(small_dataset)

    def test_cell_counts_consecutive_day_pairs(self, churn, small_dataset, small_config):
        cell = churn.cell("local", "county")
        local_queries = len(small_dataset.queries(category="local"))
        expected = local_queries * small_config.district_count * (small_config.days - 1)
        assert cell.comparisons == expected

    def test_churn_bounded_by_metrics(self, churn):
        cell = churn.cell("local", "national")
        assert 0.0 <= cell.jaccard.mean <= 1.0
        assert cell.edit.mean >= 0.0

    def test_local_churn_similar_to_noise(self, churn):
        # Local rankings are time-stable in the substrate: day-over-day
        # movement is mostly the same A/B noise as same-time pairs.
        residual = churn.churn_vs_noise("local", "county")
        assert abs(residual) < 2.0

    def test_controversial_churn_has_news_component(self, churn, small_dataset):
        # News pools rotate across days; if any controversial query held
        # a news card, its day-over-day churn shows a News component.
        cell = churn.cell("controversial", "national")
        assert cell.news_edit.mean >= 0.0
        assert 0.0 <= churn.news_share("controversial", "national") <= 1.0

    def test_single_day_dataset_rejected(self, small_dataset):
        single = small_dataset.filter(day=0)
        with pytest.raises(ValueError):
            ChurnAnalysis(single).cell("local", "county")

    def test_unknown_cell_rejected(self, churn):
        with pytest.raises(ValueError):
            churn.cell("local", "continental")


class TestExport:
    @pytest.fixture(scope="class")
    def report(self, small_dataset):
        return StudyReport(small_dataset)

    def test_csv_round_trip(self, report):
        text = export_figure_csv(report, "fig2")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 9
        assert {"granularity", "category", "edit_mean"} <= set(rows[0])

    def test_csv_values_numeric(self, report):
        rows = list(csv.DictReader(io.StringIO(export_figure_csv(report, "fig5"))))
        for row in rows:
            float(row["edit_mean"])
            float(row["noise_edit"])

    def test_json_round_trip(self, report):
        rows = json.loads(export_figure_json(report, "fig7"))
        assert all("maps" in row for row in rows)

    def test_unknown_figure_rejected(self, report):
        with pytest.raises(ValueError):
            export_figure_csv(report, "fig99")

    def test_export_all_writes_every_figure(self, report, tmp_path):
        written = export_all(report, tmp_path / "out")
        names = {p.split("/")[-1] for p in written}
        for figure in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert f"{figure}.csv" in names
        assert any(n.startswith("fig8_") for n in names)

    def test_export_all_json(self, report, tmp_path):
        written = export_all(report, tmp_path / "out", fmt="json")
        fig2 = next(p for p in written if p.endswith("fig2.json"))
        rows = json.loads(open(fig2).read())
        assert len(rows) == 9

    def test_export_all_invalid_format(self, report, tmp_path):
        with pytest.raises(ValueError):
            export_all(report, tmp_path, fmt="xml")

    def test_fig8_export_contains_series(self, report, tmp_path):
        written = export_all(report, tmp_path / "out")
        fig8 = next(p for p in written if "fig8_county" in p)
        payload = json.loads(open(fig8).read())
        assert payload["baseline"]
        assert len(payload["noise_floor"]) == len(payload["days"])


class TestIncrementalPersistence:
    def test_sink_receives_every_record(self, tmp_path):
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study
        from repro.queries.corpus import build_corpus

        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("School"), corpus.get("Starbucks")],
            days=1,
            locations_per_granularity=3,
        )
        study = Study(config)
        path = tmp_path / "incremental.jsonl.gz"
        with IncrementalWriter(path) as writer:
            dataset = study.run(sink=writer.write)
        assert writer.written == len(dataset)
        loaded = SerpDataset.load(path)
        assert len(loaded) == len(dataset)

    def test_writer_rejects_use_after_close(self, tmp_path):
        writer = IncrementalWriter(tmp_path / "x.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.write(None)  # type: ignore[arg-type]

    def test_corrupt_file_fails_with_line_number(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"query": "q"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError) as excinfo:
            SerpDataset.load(path)
        assert "corrupt.jsonl:1" in str(excinfo.value) or "corrupt.jsonl:2" in str(
            excinfo.value
        )
