"""Tests for the ASCII chart renderers."""

import pytest

from repro.core.plotting import BarChart, LineChart


class TestBarChart:
    def test_basic_render(self):
        chart = BarChart(title="demo", width=20)
        chart.add("alpha", 10.0)
        chart.add("beta", 5.0)
        text = chart.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "beta" in text

    def test_longest_bar_fills_width(self):
        chart = BarChart(title="t", width=20)
        chart.add("big", 10.0)
        chart.add("small", 1.0)
        big_line = next(l for l in chart.render().splitlines() if "big" in l)
        assert big_line.count("█") == 20

    def test_bars_scale_proportionally(self):
        chart = BarChart(title="t", width=40)
        chart.add("full", 10.0)
        chart.add("half", 5.0)
        lines = chart.render().splitlines()
        full = next(l for l in lines if "full" in l).count("█")
        half = next(l for l in lines if "half" in l).count("█")
        assert abs(full - 2 * half) <= 2

    def test_reference_mark_drawn(self):
        chart = BarChart(title="t", width=30)
        chart.add("row", 10.0, mark=5.0)
        row = next(l for l in chart.render().splitlines() if "row" in l)
        assert "|" in row

    def test_zero_values_render(self):
        chart = BarChart(title="t", width=10)
        chart.add("zero", 0.0)
        chart.add("one", 1.0)
        assert "zero" in chart.render()

    def test_negative_rejected(self):
        chart = BarChart(title="t")
        with pytest.raises(ValueError):
            chart.add("bad", -1.0)

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            BarChart(title="t").render()

    def test_value_labels_present(self):
        chart = BarChart(title="t", width=10)
        chart.add("x", 3.25)
        assert "3.25" in chart.render()


class TestLineChart:
    def test_basic_render(self):
        chart = LineChart(title="demo", width=20, height=6)
        chart.add_series("a", [1.0, 2.0, 3.0])
        text = chart.render()
        assert text.splitlines()[0] == "demo"
        assert "o a" in text  # legend

    def test_multiple_series_distinct_markers(self):
        chart = LineChart(title="t", width=20, height=6)
        chart.add_series("a", [1.0, 2.0])
        chart.add_series("b", [2.0, 1.0])
        text = chart.render()
        assert "o" in text and "x" in text

    def test_mismatched_lengths_rejected(self):
        chart = LineChart(title="t")
        chart.add_series("a", [1.0, 2.0])
        with pytest.raises(ValueError):
            chart.add_series("b", [1.0])

    def test_empty_series_rejected(self):
        chart = LineChart(title="t")
        with pytest.raises(ValueError):
            chart.add_series("a", [])

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart(title="t").render()

    def test_constant_series_renders(self):
        chart = LineChart(title="t", width=10, height=4)
        chart.add_series("flat", [2.0, 2.0, 2.0])
        assert "flat" in chart.render()

    def test_axis_labels_show_range(self):
        chart = LineChart(title="t", width=10, height=5)
        chart.add_series("a", [1.0, 9.0])
        text = chart.render()
        assert "9" in text and "1" in text

    def test_fixed_width_rows(self):
        chart = LineChart(title="t", width=24, height=5)
        chart.add_series("a", [0.0, 3.0, 1.0, 4.0])
        rows = [l for l in chart.render().splitlines() if "|" in l]
        widths = {len(r) for r in rows}
        assert len(widths) == 1


class TestReportCharts:
    def test_fig2_chart_from_dataset(self, small_dataset):
        from repro.core.report import StudyReport

        text = StudyReport(small_dataset).render_fig2_chart()
        assert "Figure 2" in text
        assert "█" in text

    def test_fig5_chart_has_noise_marks(self, small_dataset):
        from repro.core.report import StudyReport

        text = StudyReport(small_dataset).render_fig5_chart()
        assert "Figure 5" in text
        assert "|" in text

    def test_fig8_chart_renders_lines(self, small_dataset):
        from repro.core.report import StudyReport

        text = StudyReport(small_dataset).render_fig8_chart("county")
        assert "noise floor" in text
