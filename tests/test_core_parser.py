"""Tests for the SERP HTML parser against the engine's renderer.

The parser is exercised exactly the way the study uses it: on HTML
produced by the rendering pipeline, plus hand-written edge cases.
"""

import pytest

from repro.core.parser import ResultType, SerpParseError, parse_serp_html
from repro.engine.render import render_captcha, render_page
from repro.engine.serp import CardType, SerpCard, SerpPage
from repro.geo.coords import LatLon
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.urls import Url


def _doc(host, path="/", kind=DocKind.ORGANIC, title="A result"):
    return Document(
        url=Url(host=host, path=path),
        title=title,
        kind=kind,
        scope=GeoScope.NATIONAL,
        base_score=5.0,
    )


def _page(cards):
    return SerpPage(
        query_text="test query",
        cards=cards,
        reported_location=LatLon(41.43, -81.67),
        datacenter="dc03",
        day=2,
    )


@pytest.fixture()
def simple_page():
    return _page(
        [
            SerpCard(CardType.ORGANIC, [_doc("one.example.com")]),
            SerpCard(
                CardType.MAPS,
                [
                    _doc("maps.example.com", "/place/a", DocKind.MAP_PLACE),
                    _doc("maps.example.com", "/place/b", DocKind.MAP_PLACE),
                ],
            ),
            SerpCard(CardType.ORGANIC, [_doc("two.example.com")]),
            SerpCard(
                CardType.NEWS,
                [
                    _doc("news.example.com", "/n/1", DocKind.NEWS_ARTICLE),
                    _doc("news.example.com", "/n/2", DocKind.NEWS_ARTICLE),
                ],
            ),
        ]
    )


class TestParseSerpHtml:
    def test_round_trip_link_order(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        assert parsed.urls() == simple_page.links()

    def test_result_types_attributed(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        types = [r.result_type for r in parsed.results]
        assert types == [
            ResultType.NORMAL,
            ResultType.MAPS,
            ResultType.MAPS,
            ResultType.NORMAL,
            ResultType.NEWS,
            ResultType.NEWS,
        ]

    def test_type_filtering(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        assert parsed.urls(ResultType.MAPS) == [
            "https://maps.example.com/place/a",
            "https://maps.example.com/place/b",
        ]
        assert len(parsed.urls(ResultType.NORMAL)) == 2

    def test_ranks_are_sequential(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        assert [r.rank for r in parsed.results] == list(range(1, 7))

    def test_query_extracted(self, simple_page):
        assert parse_serp_html(render_page(simple_page)).query == "test query"

    def test_footer_location_extracted(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        assert parsed.reported_location is not None
        assert parsed.reported_location.lat == pytest.approx(41.43, abs=1e-4)
        assert parsed.reported_location.lon == pytest.approx(-81.67, abs=1e-4)

    def test_datacenter_and_day_extracted(self, simple_page):
        parsed = parse_serp_html(render_page(simple_page))
        assert parsed.datacenter == "dc03"
        assert parsed.day == 2

    def test_captcha_page_recognised(self):
        parsed = parse_serp_html(render_captcha("School"))
        assert parsed.is_captcha
        assert parsed.results == []

    def test_non_serp_rejected(self):
        with pytest.raises(SerpParseError):
            parse_serp_html("<html><body><p>hello</p></body></html>")

    def test_html_escaping_round_trips(self):
        page = _page(
            [SerpCard(CardType.ORGANIC, [_doc("one.example.com", title='A & B <Café>')])]
        )
        parsed = parse_serp_html(render_page(page))
        assert parsed.urls() == ["https://one.example.com/"]

    def test_query_with_apostrophe(self):
        page = SerpPage(
            query_text="Wendy's",
            cards=[SerpCard(CardType.ORGANIC, [_doc("a.example.com")])],
            reported_location=LatLon(0, 0),
            datacenter="dc00",
            day=0,
        )
        assert parse_serp_html(render_page(page)).query == "Wendy's"

    def test_engine_pages_parse_cleanly(self, engine, make_request):
        for term in ("School", "Starbucks", "Gay Marriage", "Barack Obama"):
            page = engine.serve_page(make_request(term, gps=LatLon(41.43, -81.67)))
            parsed = parse_serp_html(render_page(page))
            assert parsed.urls() == page.links()
            assert parsed.query == term

    def test_maps_links_counted_fully(self, engine, make_request):
        # Paper's rule: every link of a Maps card is extracted.
        page = None
        for nonce in range(20):
            candidate = engine.serve_page(
                make_request("School", gps=LatLon(41.43, -81.67), nonce=nonce)
            )
            if candidate.card_count(CardType.MAPS):
                page = candidate
                break
        assert page is not None, "expected a Maps card within 20 tries"
        parsed = parse_serp_html(render_page(page))
        maps_card = next(c for c in page.cards if c.card_type is CardType.MAPS)
        assert len(parsed.urls(ResultType.MAPS)) == len(maps_card.documents)
