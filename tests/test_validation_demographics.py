"""Tests for the GPS-vs-IP validation and the demographics analysis."""

import pytest

from repro.core.demographics_analysis import DemographicsAnalysis, FeatureCorrelation
from repro.core.validation import run_gps_validation
from repro.geo.demographics import DEMOGRAPHIC_FEATURES
from repro.queries.controversial import controversial_queries


@pytest.fixture(scope="module")
def gps_result():
    return run_gps_validation(321, queries=controversial_queries()[:4], machine_count=12)


@pytest.fixture(scope="module")
def ip_result():
    # Control: no GPS fix, so the engine falls back to IP geolocation.
    return run_gps_validation(
        321, queries=controversial_queries()[:4], machine_count=12, gps=None
    )


class TestGpsValidation:
    def test_high_agreement_with_shared_gps(self, gps_result):
        # Paper §2.2: "94% of the search results ... are identical".
        assert gps_result.result_agreement.mean > 0.90

    def test_jaccard_near_one_with_shared_gps(self, gps_result):
        assert gps_result.pairwise_jaccard.mean > 0.95

    def test_most_pages_identical(self, gps_result):
        assert gps_result.identical_page_fraction > 0.5

    def test_ip_fallback_diverges(self, gps_result, ip_result):
        # Without GPS, machines in different states see different pages:
        # the engine must be personalizing on GPS, not IP.
        assert ip_result.result_agreement.mean < gps_result.result_agreement.mean - 0.05

    def test_counts_propagated(self, gps_result):
        assert gps_result.machine_count == 12
        assert gps_result.query_count == 4
        assert len(gps_result.per_query_agreement) == 4

    def test_deterministic(self):
        a = run_gps_validation(99, queries=controversial_queries()[:2], machine_count=5)
        b = run_gps_validation(99, queries=controversial_queries()[:2], machine_count=5)
        assert a.result_agreement == b.result_agreement

    def test_too_few_machines_rejected(self):
        with pytest.raises(ValueError):
            run_gps_validation(1, machine_count=1)

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            run_gps_validation(1, queries=[])


class TestDemographicsAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, small_dataset, small_study):
        return DemographicsAnalysis(
            small_dataset, small_study.regions_by_name(), seed=5
        )

    def test_pair_count(self, analysis, small_config):
        n = small_config.district_count
        assert len(analysis.location_pairs()) == n * (n - 1) // 2

    def test_similarity_values_are_jaccards(self, analysis):
        for value in analysis.pairwise_similarity():
            assert 0.0 <= value <= 1.0

    def test_feature_correlation_fields(self, analysis):
        correlation = analysis.feature_correlation("median_income", iterations=100)
        assert isinstance(correlation, FeatureCorrelation)
        assert -1.0 <= correlation.pearson_r <= 1.0
        assert -1.0 <= correlation.spearman_rho <= 1.0
        assert 0.0 < correlation.p_value <= 1.0

    def test_all_features_covered(self, analysis):
        correlations = analysis.all_feature_correlations(iterations=50)
        assert [c.feature for c in correlations] == DEMOGRAPHIC_FEATURES

    def test_no_strong_demographic_correlations(self, analysis):
        # The engine never reads demographics, so — as in the paper —
        # no feature should significantly explain result similarity.
        # (With only ~10 location pairs in the test fixture, raw rho is
        # noisy; the permutation p-value is the meaningful statistic.)
        correlations = analysis.all_feature_correlations(iterations=200)
        assert all(c.p_value > 0.01 for c in correlations)
        mean_abs_rho = sum(abs(c.spearman_rho) for c in correlations) / len(correlations)
        assert mean_abs_rho < 0.5

    def test_few_features_clear_significance(self, analysis):
        # With 25 features at alpha=0.05 a couple of spurious hits are
        # expected by chance; the paper's null is "no explanatory
        # feature", not "all p-values above 0.05".
        significant = analysis.significant_features(alpha=0.01, iterations=200)
        assert len(significant) <= 4

    def test_distance_correlation_computed(self, analysis):
        correlation = analysis.distance_correlation(iterations=100)
        assert correlation.feature == "physical_distance_miles"

    def test_missing_region_rejected(self, small_dataset):
        with pytest.raises(KeyError):
            DemographicsAnalysis(small_dataset, {}).location_pairs()
