"""Tests for knowledge-panel cards."""

import pytest

from repro.core.parser import ResultType, parse_serp_html
from repro.engine.serp import CardType
from repro.geo.coords import LatLon

CLEVELAND = LatLon(41.4993, -81.6944)


class TestKnowledgeCards:
    def test_politician_gets_panel(self, engine, make_request):
        page = engine.serve_page(make_request("Barack Obama", gps=CLEVELAND))
        assert page.card_count(CardType.KNOWLEDGE) == 1
        assert page.cards[0].card_type is CardType.KNOWLEDGE

    def test_common_name_gets_no_panel(self, engine, make_request):
        # The engine cannot disambiguate "Bill Johnson" — no panel, the
        # same ambiguity driving common-name personalization.
        page = engine.serve_page(make_request("Bill Johnson", gps=CLEVELAND))
        assert page.card_count(CardType.KNOWLEDGE) == 0

    def test_brand_gets_panel(self, engine, make_request):
        page = engine.serve_page(make_request("Starbucks", gps=CLEVELAND))
        assert page.card_count(CardType.KNOWLEDGE) == 1
        panel = page.cards[0]
        assert "starbucks" in str(panel.documents[0].url)

    def test_generic_local_gets_no_panel(self, engine, make_request):
        page = engine.serve_page(make_request("School", gps=CLEVELAND))
        assert page.card_count(CardType.KNOWLEDGE) == 0

    def test_controversial_gets_no_panel(self, engine, make_request):
        page = engine.serve_page(make_request("Gay Marriage", gps=CLEVELAND))
        assert page.card_count(CardType.KNOWLEDGE) == 0

    def test_panel_only_on_first_page(self, engine, make_request):
        import dataclasses

        request = dataclasses.replace(
            make_request("Barack Obama", gps=CLEVELAND), page=1
        )
        page = engine.serve_page(request)
        assert page.card_count(CardType.KNOWLEDGE) == 0

    def test_parser_treats_panel_as_normal_first_link(self, engine, make_request):
        # The paper's parser has no panel special-case: the panel's link
        # is extracted like any normal card's first link.
        html = engine.handle(make_request("Barack Obama", gps=CLEVELAND)).html
        assert "card-knowledge" in html
        parsed = parse_serp_html(html)
        assert parsed.results[0].result_type is ResultType.NORMAL
        assert "barack-obama" in parsed.results[0].url

    def test_panel_is_location_independent(self, engine, make_request):
        a = engine.serve_page(make_request("Barack Obama", gps=CLEVELAND, nonce=4))
        b = engine.serve_page(
            make_request("Barack Obama", gps=LatLon(30.27, -97.74), nonce=4)
        )
        assert a.cards[0].documents[0].url == b.cards[0].documents[0].url

    def test_page_lengths_still_in_paper_range(self, engine, make_request):
        for term, nonce in (("Barack Obama", 1), ("Starbucks", 2)):
            page = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=nonce))
            assert 12 <= len(page.links()) <= 22

    def test_knowledge_card_must_hold_one_document(self):
        from repro.engine.serp import SerpCard
        from repro.web.documents import DocKind, Document, GeoScope
        from repro.web.urls import Url

        doc = Document(
            url=Url(host="a.example.com"),
            title="t",
            kind=DocKind.ORGANIC,
            scope=GeoScope.NATIONAL,
            base_score=1.0,
        )
        with pytest.raises(ValueError):
            SerpCard(CardType.KNOWLEDGE, [doc, doc])
