"""The unified telemetry plane: wide events, rollups, SLOs, flamegraphs.

The tentpole invariants under test:

- the wide-event log written with ``run(events=path)`` is
  **byte-identical for any worker count** — gateway on or off, faults
  active — and across a kill-and-resume, because crawl events are
  synthesized parent-side from canonical round outcomes;
- the burn-rate SLO engine *observes* the fleet's brownout controller
  (via ``counted`` marks on serve events) and reproduces its window
  accounting exactly — integer for integer — rather than re-deriving
  it;
- the rollup engine groups events into deterministic cells with
  exemplar span links, and the flamegraph exports (folded stacks,
  speedscope) conserve the trace's virtual time.
"""

import json

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.engine.datacenters import DatacenterCluster
from repro.faults.plan import FaultPlan
from repro.obs.events import (
    NULL_RECORDER,
    EventLog,
    EventRecorder,
    read_events,
    validate_events,
)
from repro.obs.exporters import (
    TraceBuilder,
    chrome_trace,
    read_trace,
    speedscope_trace,
    validate_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import folded_stacks
from repro.obs.slo import (
    DEFAULT_SLOS,
    evaluate_slos,
    is_bad_serve_outcome,
    verify_brownout_accounting,
)
from repro.obs.telemetry import filter_events, format_kv_rows, rollup
from repro.obs.trace import Tracer, trace_id_for
from repro.queries.corpus import build_corpus
from repro.serve import (
    BrownoutPolicy,
    LazyClientPopulation,
    LoadGenerator,
    ServeChaos,
    build_fleet,
)
from repro.serve.loadgen import run_load
from repro.web.world import WebWorld

FLAKY = FaultPlan.named("flaky-network", seed=7)


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    config = StudyConfig.small(
        _queries(), days=2, locations_per_granularity=2
    ).with_overrides(machine_count=5, fault_plan=FLAKY, max_retries=2)
    return config.with_overrides(**overrides) if overrides else config


def _event_bytes(config, path, workers: int) -> bytes:
    Study(config).run(workers=workers, events=str(path))
    return path.read_bytes()


def _serve_harness(*, brownout=None, plan_seed=11, replication=1, seed=21):
    world = WebWorld(21)
    cluster = DatacenterCluster()
    corpus = build_corpus()
    population = LazyClientPopulation(seed, 100_000, cluster)
    fleet = build_fleet(
        world,
        cluster,
        population.geoip_view(),
        count=3,
        corpus=corpus,
        seed=seed,
        cache_size=512,
        replication=replication,
        plan=FaultPlan.named("serve-chaos", seed=plan_seed),
        brownout=brownout,
    )
    loadgen = LoadGenerator(list(corpus), population, seed, rate_per_minute=40.0)
    return ServeChaos(fleet, loadgen)


# ---------------------------------------------------------------------------
# Crawl wide events: the byte-identity tentpole
# ---------------------------------------------------------------------------


class TestCrawlEventDeterminism:
    @pytest.mark.parametrize("gateway", [False, True], ids=["direct", "gateway"])
    def test_events_byte_identical_across_worker_counts(self, tmp_path, gateway):
        config = _config(route_via_gateway=gateway)
        baseline = _event_bytes(config, tmp_path / "w1.events", workers=1)
        for workers in (2, 4):
            shard = _event_bytes(config, tmp_path / f"w{workers}.events", workers)
            assert shard == baseline, f"workers={workers} gateway={gateway}"

    def test_events_byte_identical_after_kill_and_resume(self, tmp_path):
        class Killed(Exception):
            pass

        def killing_sink(after):
            seen = []

            def sink(record):
                seen.append(record)
                if len(seen) >= after:
                    raise Killed(f"killed after {after}")

            return sink

        uninterrupted = _event_bytes(_config(), tmp_path / "base.events", 1)
        events_path = tmp_path / "resumed.events"
        with pytest.raises(Killed):
            Study(_config()).run(
                sink=killing_sink(17),
                checkpoint=str(tmp_path / "crawl.ckpt"),
                events=str(events_path),
            )
        Study(_config()).run(
            checkpoint=str(tmp_path / "crawl.ckpt"), events=str(events_path)
        )
        assert events_path.read_bytes() == uninterrupted

    def test_events_do_not_perturb_the_dataset(self, tmp_path):
        plain = Study(_config()).run()
        logged = Study(_config()).run(events=str(tmp_path / "e.events"))
        assert [r.to_dict() for r in logged] == [r.to_dict() for r in plain]

    def test_log_is_structurally_valid_and_carries_every_dimension(
        self, tmp_path
    ):
        path = tmp_path / "crawl.events"
        study = Study(_config())
        dataset = study.run(events=str(path))
        assert validate_events(str(path)) == []
        header, events, summary = read_events(str(path))
        assert header["kind"] == "header"
        assert summary["events"] == len(events)
        # One event per scheduled crawl cell: rounds x treatments.
        assert len(events) == study.round_count() * len(study.treatments)
        ok = [e for e in events if e["outcome"] == "ok"]
        assert len(ok) == len(dataset)
        for dim in (
            "id",
            "stream",
            "ts",
            "ordinal",
            "treatment",
            "granularity",
            "location",
            "query",
            "day",
            "machine",
            "outcome",
            "span",
        ):
            assert all(dim in e for e in events), dim
        # Exemplar linkage: the span id matches the trace's crawl span
        # for the same (round, treatment) position.
        trace_path = tmp_path / "crawl.trace"
        Study(_config()).run(trace=str(trace_path))
        _, spans, _ = read_trace(str(trace_path))
        round_ordinals = {
            s["id"]: s["attrs"]["ordinal"]
            for s in spans
            if s["name"] == "round"
        }
        crawl_spans = {
            (round_ordinals[s["parent"]], s["attrs"]["treatment"]): s["id"]
            for s in spans
            if s["name"] == "crawl"
        }
        for event in events[:24]:
            assert crawl_spans[(event["ordinal"], event["treatment"])] == (
                event["span"]
            )


class TestEventLogUnit:
    def test_null_recorder_is_disabled_and_inert(self):
        assert not NULL_RECORDER.enabled
        NULL_RECORDER.emit("serve", key=("x",), outcome="ok")  # no-op

    def test_recorder_ids_are_deterministic_and_unique(self, tmp_path):
        def emit_three(path):
            log = EventLog(str(path), log_id="abc", meta={})
            recorder = EventRecorder()
            recorder.attach(log)
            for nonce in ("n1", "n2", "n3"):
                recorder.emit("serve", key=(nonce,), outcome="ok")
            recorder.detach()
            log.close()
            return path.read_bytes()

        first = emit_three(tmp_path / "a.events")
        second = emit_three(tmp_path / "b.events")
        assert first == second
        _, events, _ = read_events(str(tmp_path / "a.events"))
        assert len({e["id"] for e in events}) == 3

    def test_validate_events_catches_truncation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), log_id="abc", meta={})
        recorder = EventRecorder()
        recorder.attach(log)
        recorder.emit("serve", key=("n",), ts=0.0, outcome="ok")
        log.close()
        assert validate_events(str(path)) == []
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the summary
        assert validate_events(str(path)) != []


# ---------------------------------------------------------------------------
# Serve wide events
# ---------------------------------------------------------------------------


class TestServeEvents:
    @pytest.fixture(scope="class")
    def serve_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "serve.events.jsonl"
        report = _serve_harness().run(300, events=str(path))
        return report, path

    def test_one_event_per_request_matching_the_ledger(self, serve_log):
        report, path = serve_log
        assert validate_events(str(path)) == []
        _, events, _ = read_events(str(path))
        serve = [e for e in events if e["stream"] == "serve"]
        assert len(serve) == report.offered
        by_outcome = rollup(serve, ["outcome"])
        counts = {cell.key[0]: cell.count for cell in by_outcome.cells}
        assert counts.get("served_fresh", 0) == report.served_fresh
        assert counts.get("served_stale", 0) == report.served_stale
        assert counts.get("shed", 0) == report.shed
        assert counts.get("failed", 0) == report.failed

    def test_control_stream_records_every_injected_fault(self, serve_log):
        report, path = serve_log
        _, events, _ = read_events(str(path))
        controls = [e for e in events if e["stream"] == "serve.control"]
        injected = [
            e for e in controls if e["control"].startswith("fault.")
        ]
        assert len(injected) == sum(report.faults_injected.values())

    def test_identical_configs_produce_identical_logs(self, tmp_path):
        logs = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.events.jsonl"
            _serve_harness().run(120, events=str(path))
            logs.append(path.read_bytes())
        assert logs[0] == logs[1]

    def test_events_carry_rung_cache_and_latency(self, serve_log):
        _, path = serve_log
        _, events, _ = read_events(str(path))
        serve = [e for e in events if e["stream"] == "serve"]
        rungs = {e["rung"] for e in serve}
        assert "primary" in rungs
        assert all(e["cache"] in ("hit", "bypass", "stale", "miss") for e in serve)
        assert all(e["latency"] >= 0.0 for e in serve)
        assert all(isinstance(e["counted"], bool) for e in serve)


# ---------------------------------------------------------------------------
# Burn-rate SLO engine
# ---------------------------------------------------------------------------


def _synthetic_serve(count, bad_indices, *, start=0.0, step=0.1):
    events = []
    for index in range(count):
        events.append(
            {
                "stream": "serve",
                "ts": start + index * step,
                "outcome": "shed" if index in bad_indices else "served_fresh",
                "latency": 0.01,
            }
        )
    return events


class TestSLOEngine:
    def test_bad_outcome_classifier(self):
        assert not is_bad_serve_outcome("served_fresh")
        for outcome in ("served_stale", "shed", "failed"):
            assert is_bad_serve_outcome(outcome)

    def test_clean_log_meets_every_slo_with_empty_ledger(self):
        report = evaluate_slos(_synthetic_serve(200, set()))
        assert all(result.met for result in report.results)
        assert report.ledger == []
        assert report.violations == []

    def test_bad_burst_fires_and_resolves_deterministically(self):
        # A dense burst of bad outcomes inside both windows trips the
        # 14.4x fast / 6x slow burn thresholds; the later clean stretch
        # lets the fast window drain and the alert resolve.
        events = _synthetic_serve(800, set(range(100, 160)))
        report = evaluate_slos(events)
        availability = next(
            r for r in report.results if r.slo.name == "serve-availability"
        )
        states = [entry["state"] for entry in availability.alerts]
        assert states == ["firing", "resolved"]
        assert not availability.firing
        # Identical input, identical ledger — entry for entry.
        assert evaluate_slos(events).ledger == report.ledger

    def test_still_firing_at_end_of_log_is_a_violation(self):
        events = _synthetic_serve(300, set(range(200, 300)))
        report = evaluate_slos(events)
        assert any("still firing" in problem for problem in report.violations)

    def test_latency_slo_uses_threshold_not_outcome(self):
        events = _synthetic_serve(100, set())
        for event in events[:20]:
            event["latency"] = 5.0  # way past the 1-minute threshold
        report = evaluate_slos(events)
        latency = next(
            r for r in report.results if r.slo.name == "serve-latency"
        )
        assert latency.bad == 20
        assert not latency.met


class TestBrownoutAccounting:
    """The SLO engine must reproduce the fleet controller's window
    arithmetic exactly — same samples, same prune points, same
    integers — never a parallel reimplementation that drifts."""

    @pytest.fixture(scope="class")
    def brownout_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("brownout") / "events.jsonl"
        policy = BrownoutPolicy(
            window_minutes=2.0, max_bad_fraction=0.1, min_window_requests=10
        )
        report = _serve_harness(brownout=policy).run(300, events=str(path))
        _, events, _ = read_events(str(path))
        return report, events

    def test_controller_transitions_reach_the_log(self, brownout_log):
        report, events = brownout_log
        controls = [
            e["control"]
            for e in events
            if e["stream"] == "serve.control"
            and e["control"].startswith("brownout.")
        ]
        assert controls.count("brownout.enter") == report.brownout_entries
        assert report.brownout_entries >= 2
        assert "brownout.exit" in controls

    def test_replay_reproduces_the_window_integers_exactly(self, brownout_log):
        _, events = brownout_log
        assert verify_brownout_accounting(events) == []

    def test_tampered_window_count_is_detected(self, brownout_log):
        _, events = brownout_log
        tampered = [dict(e) for e in events]
        for event in tampered:
            if event["stream"] == "serve.control" and event["control"].startswith(
                "brownout."
            ):
                event["window_bad"] += 1
                break
        assert verify_brownout_accounting(tampered) != []

    def test_brownout_transitions_join_the_alert_ledger(self, brownout_log):
        report, events = brownout_log
        slo_report = evaluate_slos(events)
        assert slo_report.brownout_mismatches == []
        brownouts = [
            entry
            for entry in slo_report.ledger
            if entry["kind"] == "brownout"
        ]
        firing = [e for e in brownouts if e["state"] == "firing"]
        assert len(firing) == report.brownout_entries
        ats = [entry["at"] for entry in slo_report.ledger]
        assert ats == sorted(ats)


class TestAuditEventsInLedger:
    def test_audit_drift_alerts_become_ledger_entries(self):
        events = [
            {
                "stream": "audit",
                "ts": 3.0,
                "audit": "weather",
                "cycle": 3,
                "outcome": "ok",
                "alerts": 2,
                "alert_series": ["jaccard", "kendall"],
            }
        ]
        report = evaluate_slos(events)
        drift = [e for e in report.ledger if e["kind"] == "audit-drift"]
        assert [entry["series"] for entry in drift] == ["jaccard", "kendall"]
        assert all(entry["slo"] == "audit:weather" for entry in drift)


# ---------------------------------------------------------------------------
# Rollups
# ---------------------------------------------------------------------------


class TestRollup:
    EVENTS = [
        {"stream": "serve", "outcome": "ok", "shard": "a", "latency": 1.0,
         "span": "s1", "id": "e1"},
        {"stream": "serve", "outcome": "ok", "shard": "b", "latency": 3.0,
         "id": "e2"},
        {"stream": "serve", "outcome": "shed", "shard": "a", "id": "e3"},
        {"stream": "crawl", "outcome": "ok", "id": "e4"},
    ]

    def test_groups_and_counts(self):
        roll = rollup(self.EVENTS, ["outcome"])
        assert {cell.key: cell.count for cell in roll.cells} == {
            ("ok",): 3,
            ("shed",): 1,
        }
        assert roll.total_events == 4

    def test_missing_dimension_groups_under_dash(self):
        roll = rollup(self.EVENTS, ["shard"])
        assert {cell.key: cell.count for cell in roll.cells} == {
            ("a",): 2,
            ("b",): 1,
            ("-",): 1,
        }

    def test_value_aggregation(self):
        roll = rollup(self.EVENTS[:2], ["outcome"], value="latency")
        (cell,) = roll.cells
        assert cell.value_sum == 4.0
        assert cell.value_mean == 2.0
        assert cell.value_min == 1.0
        assert cell.value_max == 3.0
        assert cell.histogram.count == 2

    def test_exemplars_prefer_span_links(self):
        roll = rollup(self.EVENTS, ["outcome"])
        ok_cell = next(cell for cell in roll.cells if cell.key == ("ok",))
        assert ok_cell.exemplars[0]["span"] == "s1"
        assert "[s1]" in roll.render()

    def test_filter_events_compares_as_strings(self):
        assert len(filter_events(self.EVENTS, stream="serve")) == 3
        assert (
            len(filter_events(self.EVENTS, where={"outcome": "shed"})) == 1
        )
        assert filter_events(self.EVENTS, where={"outcome": "nope"}) == []

    def test_rollup_requires_dimensions(self):
        with pytest.raises(ValueError):
            rollup(self.EVENTS, [])

    def test_format_kv_rows_is_the_shared_gutter(self):
        assert format_kv_rows([("label", "value")]) == ["  label             value"]


# ---------------------------------------------------------------------------
# Prometheus conformance (satellite)
# ---------------------------------------------------------------------------


class _Holder:
    pass


class TestPrometheusConformance:
    @pytest.fixture()
    def exposition(self):
        from repro.obs.metrics import Histogram

        holder = _Holder()
        holder.count = 7
        holder.depth = 3
        holder.by_kind = {'sh"ard\\a\n': 2, "shard-b": 5}
        histogram = Histogram()
        for value in (0.2, 1.5, 40.0):
            histogram.observe(value)
        holder.wait = histogram
        registry = MetricsRegistry()
        registry.register_counter(
            "requests_total", holder, "count", help='all "offered"\nrequests\\'
        )
        registry.register_gauge("queue_depth", holder, "depth")
        registry.register_labeled(
            "by_kind", holder, "by_kind", label="kind", help="per kind"
        )
        registry.register_histogram("wait_minutes", holder, "wait")
        return registry.render_prometheus()

    def test_every_sample_family_is_typed(self, exposition):
        typed = set()
        for line in exposition.splitlines():
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
        for line in exposition.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            assert base in typed, line

    def test_max_sidecar_is_its_own_gauge_family(self, exposition):
        assert "# TYPE repro_wait_minutes histogram" in exposition
        assert "# TYPE repro_wait_minutes_max gauge" in exposition
        lines = exposition.splitlines()
        max_type = lines.index("# TYPE repro_wait_minutes_max gauge")
        assert lines[max_type + 1].startswith("repro_wait_minutes_max ")

    def test_buckets_are_cumulative_and_end_at_inf(self, exposition):
        buckets = []
        for line in exposition.splitlines():
            if line.startswith("repro_wait_minutes_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets.append((le, float(line.split()[-1])))
        assert buckets[-1][0] == "+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        count_line = next(
            line
            for line in exposition.splitlines()
            if line.startswith("repro_wait_minutes_count")
        )
        assert float(count_line.split()[-1]) == buckets[-1][1] == 3.0

    def test_label_and_help_escaping(self, exposition):
        assert 'kind="sh\\"ard\\\\a\\n"' in exposition
        assert 'all \\"offered\\"' not in exposition  # quotes stay raw in HELP
        assert "all \"offered\"\\nrequests\\\\" in exposition
        # The exposition must stay single-line-per-sample.
        for line in exposition.splitlines():
            assert "\n" not in line


# ---------------------------------------------------------------------------
# Fleet spans -> Chrome trace (satellite)
# ---------------------------------------------------------------------------


class TestFleetChromeTrace:
    @pytest.fixture(scope="class")
    def fleet_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fleettrace") / "fleet.trace.jsonl"
        harness = _serve_harness()
        meta = {"bench": "fleet", "seed": 21}
        trace_id = trace_id_for(meta)
        tracer = Tracer()
        tracer.enable(trace_id)
        harness.fleet.tracer = tracer
        run_load(harness.fleet, harness.loadgen, 60)
        builder = TraceBuilder(str(path), trace_id=trace_id, meta=meta)
        builder.add_trees(tracer.drain())
        builder.close()
        return path

    def test_trace_validates_and_covers_every_request(self, fleet_trace):
        assert validate_trace(str(fleet_trace)) == []
        _, spans, _ = read_trace(str(fleet_trace))
        requests = [s for s in spans if s["name"] == "fleet.request"]
        assert len(requests) == 60
        assert all(s["end"] >= s["start"] for s in spans)

    def test_chrome_export_nests_fleet_spans(self, fleet_trace):
        exported = chrome_trace(str(fleet_trace))
        events = exported["traceEvents"]
        fleet_events = [
            e for e in events if e.get("name") == "fleet.request"
        ]
        assert len(fleet_events) == 60
        # Every instant event (fleet.reroute, fleet.fault, ...) lands
        # inside the overall trace bounds.
        complete = [e for e in events if e.get("ph") == "X"]
        lo = min(e["ts"] for e in complete)
        hi = max(e["ts"] + e["dur"] for e in complete)
        for event in events:
            if event.get("ph") == "i":
                assert lo <= event["ts"] <= hi


# ---------------------------------------------------------------------------
# Flamegraph exports
# ---------------------------------------------------------------------------


class TestFlamegraphExports:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("flame") / "crawl.trace.jsonl"
        Study(_config()).run(trace=str(path))
        return path

    def test_folded_stacks_conserve_virtual_time(self, trace_path):
        lines = folded_stacks(str(trace_path))
        assert lines == sorted(lines)
        weights = {}
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack
            weights[stack] = int(weight)
        assert all(weight > 0 for weight in weights.values())
        # Self times are bounded by the trace's virtual time: at least
        # the root spans' total (overlapping siblings clamp a parent's
        # self time at zero but never create negative weight), at most
        # the sum of every span's own duration.
        _, spans, _ = read_trace(str(trace_path))
        by_id = {s["id"] for s in spans}
        micros = 60_000_000
        roots = sum(
            s["end"] - s["start"] for s in spans if s["parent"] not in by_id
        )
        everything = sum(s["end"] - s["start"] for s in spans)
        total = sum(weights.values())
        assert roots * micros - len(spans) <= total <= everything * micros + len(spans)

    def test_folded_stacks_are_deterministic(self, trace_path, tmp_path):
        other = tmp_path / "again.trace.jsonl"
        Study(_config()).run(trace=str(other))
        assert folded_stacks(str(trace_path)) == folded_stacks(str(other))

    def test_speedscope_profiles_are_balanced_and_bounded(self, trace_path):
        doc = speedscope_trace(str(trace_path))
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        frames = doc["shared"]["frames"]
        assert doc["profiles"], "at least the schedule row"
        names = [p["name"] for p in doc["profiles"]]
        assert names[0] == "schedule"
        for profile in doc["profiles"]:
            assert profile["unit"] == "microseconds"
            depth = 0
            last = profile["startValue"]
            for event in profile["events"]:
                assert profile["startValue"] <= event["at"] <= profile["endValue"]
                assert event["at"] >= last
                last = event["at"]
                assert 0 <= event["frame"] < len(frames)
                depth += 1 if event["type"] == "O" else -1
                assert depth >= 0
            assert depth == 0, "every opened frame closes"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestTelemetryCLI:
    @pytest.fixture(scope="class")
    def serve_events(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "serve.events.jsonl"
        _serve_harness().run(200, events=str(path))
        return path

    def test_summary_validates_the_log(self, serve_events, capsys):
        from repro.cli import main

        assert main(["telemetry", str(serve_events)]) == 0
        out = capsys.readouterr().out
        assert "ok (" in out
        assert "stream serve" in out

    def test_rollup_subcommand(self, serve_events, capsys):
        from repro.cli import main

        assert main(
            [
                "telemetry",
                str(serve_events),
                "rollup",
                "--stream",
                "serve",
                "--by",
                "rung,cache",
                "--value",
                "latency",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "rollup by (rung, cache)" in out
        assert "primary" in out

    def test_query_subcommand_emits_json_lines(self, serve_events, capsys):
        from repro.cli import main

        assert main(
            [
                "telemetry",
                str(serve_events),
                "query",
                "--stream",
                "serve",
                "--where",
                "outcome=served_fresh",
                "--limit",
                "3",
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(
            json.loads(line)["outcome"] == "served_fresh" for line in lines
        )

    def test_slo_subcommand_and_html_report(
        self, serve_events, tmp_path, capsys
    ):
        from repro.cli import main

        ledger = tmp_path / "ledger.json"
        html = tmp_path / "report.html"
        code = main(
            [
                "telemetry",
                str(serve_events),
                "slo",
                "--ledger",
                str(ledger),
                "--html",
                str(html),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slo report" in out
        assert "brownout replay" in out and "exact" in out
        assert json.loads(ledger.read_text()) is not None
        assert "<html" in html.read_text()

    def test_slo_check_gates_on_violations(self, serve_events):
        from repro.cli import main

        # serve-chaos sheds >1% of requests, so availability is violated.
        assert main(["telemetry", str(serve_events), "slo", "--check"]) == 1

    def test_trace_flamegraph_exports(self, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "t.trace.jsonl"
        Study(_config()).run(trace=str(trace_path))
        folded = tmp_path / "t.folded"
        speedscope = tmp_path / "t.speedscope.json"
        assert main(
            [
                "trace",
                str(trace_path),
                "--folded",
                str(folded),
                "--speedscope",
                str(speedscope),
            ]
        ) == 0
        assert folded.read_text().strip()
        assert json.loads(speedscope.read_text())["profiles"]

    def test_metrics_out_writes_the_rendering(self, tmp_path):
        from repro.cli import main

        study = Study(_config())
        study.run()
        snapshot_path = tmp_path / "metrics.json"
        snapshot_path.write_text(
            json.dumps(study.metrics_registry().snapshot())
        )
        out = tmp_path / "metrics.prom"
        assert main(
            ["metrics", str(snapshot_path), "--format", "prom", "--out", str(out)]
        ) == 0
        assert "# TYPE" in out.read_text()
