"""Unit tests for repro.faults: plans, retry policy, breakers, injector.

The overarching contract: every fault decision is a pure function of
(plan seed, request nonce) or (plan seed, virtual time) — never of
wall clock, global counters, or request interleaving — so chaos runs
are exactly as reproducible as clean ones.
"""

import pytest

from repro.core.browser import MobileBrowser, Network
from repro.core.experiment import StudyConfig
from repro.core.parser import parse_serp_html
from repro.core.runner import Study
from repro.faults.breaker import BreakerBoard, BreakerState
from repro.faults.injector import (
    BrowserCrash,
    FaultStats,
    FaultyNetwork,
    InjectedDNSFailure,
    RequestTimeout,
)
from repro.faults.plan import FaultKind, FaultPlan, FailureKind, NAMED_PLANS
from repro.faults.retry import RetryPolicy
from repro.net.dns import ResolutionError
from repro.queries.corpus import build_corpus


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School")]


def _tiny_config(**overrides):
    config = StudyConfig.small(_queries(), days=1, locations_per_granularity=2)
    return config.with_overrides(**overrides) if overrides else config


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.2, timeout_rate=0.2)
        for nonce in range(50):
            assert plan.request_fault(nonce) == plan.request_fault(nonce)

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, crash_rate=0.3)
        b = FaultPlan(seed=2, crash_rate=0.3)
        decisions_a = [a.request_fault(n) for n in range(200)]
        decisions_b = [b.request_fault(n) for n in range(200)]
        assert decisions_a != decisions_b

    def test_zero_plan_injects_nothing(self):
        plan = FaultPlan()
        assert plan.is_zero
        assert all(plan.request_fault(n) is None for n in range(100))
        assert not any(plan.truncates(n) for n in range(100))
        assert not plan.in_storm(0.0) and not plan.in_storm(1e6)

    def test_rates_hit_roughly_their_targets(self):
        plan = FaultPlan(seed=3, dns_failure_rate=0.25)
        hits = sum(
            plan.request_fault(n) is FaultKind.DNS_FAILURE for n in range(2000)
        )
        assert 0.2 < hits / 2000 < 0.3

    def test_storm_windows_cover_the_right_fraction(self):
        plan = FaultPlan(seed=5, storm_period_minutes=100.0, storm_minutes=10.0)
        in_storm = sum(plan.in_storm(float(t)) for t in range(10_000))
        assert 0.08 < in_storm / 10_000 < 0.12
        # and the window is contiguous per period
        assert any(plan.in_storm(float(t)) for t in range(100))

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(storm_period_minutes=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(storm_period_minutes=1.0, storm_minutes=2.0)

    def test_named_plans(self):
        assert FaultPlan.named("calm").is_zero
        chaos = FaultPlan.named("chaos", seed=42)
        assert chaos.seed == 42
        # the acceptance bar: chaos faults >10% of requests
        assert chaos.request_fault_rate > 0.10
        with pytest.raises(ValueError):
            FaultPlan.named("no-such-plan")
        for name, plan in NAMED_PLANS.items():
            assert FaultPlan.named(name, seed=9).seed == 9


class TestRetryPolicy:
    def test_default_reproduces_seed_doubling(self):
        # The seed runner did 1.5, 3.0, 6.0 for max_retries=3; the
        # default policy must match exactly (cap engages only later).
        policy = RetryPolicy()
        assert policy.schedule(3, "b", 0.0) == [1.5, 3.0, 6.0]

    def test_cap_engages_beyond_seed_budgets(self):
        policy = RetryPolicy()
        assert policy.delay_minutes(3, "b", 0.0) == 8.0
        assert policy.delay_minutes(10, "b", 0.0) == 8.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.5)
        base = RetryPolicy()
        for attempt in range(4):
            d1 = policy.delay_minutes(attempt, "browser-1", 11.0)
            d2 = policy.delay_minutes(attempt, "browser-1", 11.0)
            assert d1 == d2
            unjittered = base.delay_minutes(attempt, "browser-1", 11.0)
            assert 0.5 * unjittered <= d1 < 1.5 * unjittered

    def test_jitter_varies_by_key(self):
        policy = RetryPolicy(jitter=0.5)
        delays = {policy.delay_minutes(1, f"browser-{i}", 0.0) for i in range(20)}
        assert len(delays) > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_minutes=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_minutes=10.0, cap_minutes=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_minutes(-1)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        board = BreakerBoard(failure_threshold=3, cooldown_minutes=5.0)
        for minute in range(3):
            assert board.allow("ip", float(minute))
            board.record_failure("ip", float(minute))
        assert board.state_of("ip") is BreakerState.OPEN
        assert not board.allow("ip", 2.5)

    def test_success_resets_the_count(self):
        board = BreakerBoard(failure_threshold=3)
        board.record_failure("ip", 0.0)
        board.record_failure("ip", 1.0)
        board.record_success("ip", 2.0)
        board.record_failure("ip", 3.0)
        board.record_failure("ip", 4.0)
        assert board.state_of("ip") is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        board = BreakerBoard(failure_threshold=1, cooldown_minutes=2.0)
        board.record_failure("ip", 0.0)
        assert board.state_of("ip") is BreakerState.OPEN
        assert not board.allow("ip", 1.0)
        assert board.allow("ip", 2.0)  # cooldown passed: probe admitted
        assert board.state_of("ip") is BreakerState.HALF_OPEN
        assert not board.allow("ip", 2.0)  # only one probe at a time
        board.record_success("ip", 2.1)
        assert board.state_of("ip") is BreakerState.CLOSED
        assert board.allow("ip", 2.2)

    def test_half_open_probe_failure_reopens(self):
        board = BreakerBoard(failure_threshold=1, cooldown_minutes=2.0)
        board.record_failure("ip", 0.0)
        assert board.allow("ip", 2.0)
        board.record_failure("ip", 2.1)
        assert board.state_of("ip") is BreakerState.OPEN
        assert not board.allow("ip", 3.0)  # new cooldown from 2.1
        assert board.allow("ip", 4.5)

    def test_transitions_are_logged_with_keys(self):
        board = BreakerBoard(failure_threshold=1, cooldown_minutes=1.0)
        board.record_failure("a", 0.0)
        board.allow("a", 1.0)
        board.record_success("a", 1.1)
        states = [(t.key, t.old, t.new) for t in board.transitions()]
        assert states == [
            ("a", BreakerState.CLOSED, BreakerState.OPEN),
            ("a", BreakerState.OPEN, BreakerState.HALF_OPEN),
            ("a", BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_capture_restore_round_trip(self):
        board = BreakerBoard(failure_threshold=2, cooldown_minutes=3.0)
        board.record_failure("a", 0.0)
        board.record_failure("a", 1.0)
        board.record_failure("b", 1.0)
        snapshot = board.capture_state()
        clone = BreakerBoard(failure_threshold=2, cooldown_minutes=3.0)
        clone.restore_state(snapshot)
        assert clone.capture_state() == snapshot
        assert clone.state_of("a") is BreakerState.OPEN
        # restored breaker behaves identically going forward
        assert clone.allow("a", 5.0) == board.allow("a", 5.0)


class TestFaultStats:
    def test_accounting_invariant(self):
        stats = FaultStats()
        stats.record_injected(FailureKind.TIMEOUT)
        stats.record_injected(FailureKind.TIMEOUT)
        stats.record_absorbed(FailureKind.TIMEOUT)
        assert stats.unaccounted() == {"timeout": 1}
        stats.record_terminal(FailureKind.TIMEOUT)
        assert stats.unaccounted() == {}

    def test_merge_sums_all_ledgers(self):
        a, b = FaultStats(), FaultStats()
        a.record_injected(FailureKind.DNS_FAILURE)
        a.record_attempts(2)
        b.record_injected(FailureKind.DNS_FAILURE)
        b.record_absorbed(FailureKind.DNS_FAILURE)
        b.record_attempts(2)
        a.merge(b)
        assert a.injected == {"dns-failure": 2}
        assert a.absorbed == {"dns-failure": 1}
        assert a.retry_histogram == {2: 2}

    def test_capture_restore_round_trip(self):
        stats = FaultStats()
        stats.record_injected(FailureKind.BROWSER_CRASH)
        stats.record_terminal(FailureKind.BROWSER_CRASH)
        stats.record_attempts(3)
        clone = FaultStats()
        clone.restore_state(stats.capture_state())
        assert clone == stats


class _Harness:
    """One browser wired through a FaultyNetwork into a real engine."""

    def __init__(self, plan):
        study = Study(_tiny_config())
        self.stats = FaultStats()
        self.network = FaultyNetwork(
            study.resolver, study.engine, plan, stats=self.stats
        )
        treatment = study.treatments[0]
        self.browser = MobileBrowser(
            browser_id="harness",
            machine=treatment.browser.machine,
            network=self.network,
        )
        self.browser.geolocation.set(treatment.region.center)


class TestFaultyNetwork:
    def test_zero_plan_is_transparent(self):
        study_a = Study(_tiny_config())
        study_b = Study(_tiny_config(fault_plan=FaultPlan()))
        assert isinstance(study_b.network, FaultyNetwork)
        html_a = study_a.treatments[0].browser.search("Starbucks", 0.0).html
        html_b = study_b.treatments[0].browser.search("Starbucks", 0.0).html
        assert html_a == html_b

    def test_injected_faults_raise_typed_exceptions(self):
        crash = _Harness(FaultPlan(crash_rate=1.0))
        with pytest.raises(BrowserCrash):
            crash.browser.search("Starbucks", 0.0)
        assert crash.stats.injected == {"browser-crash": 1}

        dns = _Harness(FaultPlan(dns_failure_rate=1.0))
        with pytest.raises(ResolutionError):  # injected subclass of organic
            dns.browser.search("Starbucks", 0.0)
        with pytest.raises(InjectedDNSFailure):
            dns.browser.search("Starbucks", 1.0)

        timeout = _Harness(FaultPlan(timeout_rate=1.0))
        with pytest.raises(RequestTimeout):
            timeout.browser.search("Starbucks", 0.0)

    def test_server_error_surfaces_as_500(self):
        harness = _Harness(FaultPlan(server_error_rate=1.0))
        result = harness.browser.search("Starbucks", 0.0)
        assert result.status.value == 500
        assert not result.ok

    def test_storm_serves_captcha_interstitial(self):
        plan = FaultPlan(storm_period_minutes=100.0, storm_minutes=100.0 - 1e-9)
        harness = _Harness(plan)
        result = harness.browser.search("Starbucks", 0.0)
        assert result.status.value == 429
        parsed = parse_serp_html(result.html)
        assert parsed.is_captcha
        assert harness.stats.injected == {"rate-limit-storm": 1}

    def test_truncated_pages_are_detectably_incomplete(self):
        harness = _Harness(FaultPlan(truncation_rate=1.0))
        seen = 0
        for i in range(10):
            result = harness.browser.search("Starbucks", float(i * 11))
            assert result.ok  # bytes arrived 200 OK
            try:
                parsed = parse_serp_html(result.html)
            except Exception:
                continue  # unparsable truncation: also detectable
            assert not parsed.is_complete
            seen += 1
        assert harness.stats.injected == {"malformed-serp": 10}
        assert seen > 0  # at least some truncations parse partially

    def test_fault_schedule_is_nonce_keyed_not_order_keyed(self):
        plan = FaultPlan(seed=11, crash_rate=0.3)

        def outcomes(harness):
            results = []
            for i in range(30):
                try:
                    harness.browser.search("Starbucks", float(i * 11))
                    results.append("ok")
                except BrowserCrash:
                    results.append("crash")
            return results

        assert outcomes(_Harness(plan)) == outcomes(_Harness(plan))


class TestRunnerIntegration:
    def test_browser_crash_restarts_and_recovers(self):
        config = _tiny_config(
            fault_plan=FaultPlan(seed=4, crash_rate=0.2), max_retries=4
        )
        study = Study(config)
        dataset = study.run()
        assert study.stats.crashes > 0
        assert sum(t.browser.restarts for t in study.treatments) == study.stats.crashes
        assert len(dataset) > 0
        assert study.fault_stats.unaccounted() == {}

    def test_failures_carry_taxonomy_kinds(self):
        # max_retries=0: every injected fault is terminal.
        config = _tiny_config(
            fault_plan=FaultPlan(seed=4, dns_failure_rate=0.3), max_retries=0
        )
        study = Study(config)
        study.run()
        assert study.failures, "a 30% DNS failure rate must lose some queries"
        kinds = {failure.kind for failure in study.failures}
        assert kinds == {"dns-failure"}
        assert all(failure.reason == failure.kind for failure in study.failures)
        assert study.fault_stats.unaccounted() == {}

    def test_organic_resolution_error_is_a_structured_failure(self):
        # Break DNS for real (no injection): unpin and empty the zone.
        config = _tiny_config(max_retries=0)
        study = Study(config)
        study.resolver._static.clear()
        study.resolver._zone.clear()
        dataset = study.run()
        assert len(dataset) == 0
        assert study.failures
        assert {failure.kind for failure in study.failures} == {"dns-failure"}
        assert "could not resolve" in str(
            ResolutionError(study.engine.dialect.hostname)
        )

    def test_breakers_fastfail_under_sustained_faults(self):
        config = _tiny_config(
            fault_plan=FaultPlan(seed=2, server_error_rate=0.9),
            max_retries=2,
        )
        study = Study(config)
        study.run()
        assert study.breakers is not None
        assert study.stats.breaker_fastfails > 0
        assert any(
            t.new is BreakerState.OPEN for t in study.breakers.transitions()
        )
        assert {f.kind for f in study.failures} <= {"server-error", "breaker-open"}
        assert study.fault_stats.unaccounted() == {}

    def test_breakers_off_by_default_without_plan(self):
        assert Study(_tiny_config()).breakers is None
        assert Study(_tiny_config(fault_plan=FaultPlan())).breakers is not None
        assert (
            Study(_tiny_config(circuit_breakers=True)).breakers is not None
        )
        assert (
            Study(
                _tiny_config(fault_plan=FaultPlan(), circuit_breakers=False)
            ).breakers
            is None
        )

    def test_storm_failures_attributed_to_storm_not_captcha(self):
        config = _tiny_config(
            fault_plan=FaultPlan(
                seed=1, storm_period_minutes=100.0, storm_minutes=99.0
            ),
            max_retries=0,
        )
        study = Study(config)
        study.run()
        storm_failures = [f for f in study.failures if f.kind == "rate-limit-storm"]
        assert storm_failures, "a near-permanent storm must lose queries"
        assert study.fault_stats.unaccounted() == {}
