"""Property-based tests for the extension modules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plotting import BarChart, LineChart
from repro.core.rank_metrics import kendall_tau, rank_biased_overlap, top_k_overlap
from repro.stats.hypothesis_tests import bootstrap_ci, mann_whitney_u

items = st.text(alphabet="abcdef", min_size=1, max_size=3)
rankings = st.lists(items, max_size=10, unique=True)
samples = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=40
)


class TestRankMetricProperties:
    @given(rankings)
    def test_rbo_self_is_one(self, ranking):
        assert rank_biased_overlap(ranking, ranking) == 1.0

    @given(rankings, rankings)
    def test_rbo_bounded_and_symmetric(self, a, b):
        value = rank_biased_overlap(a, b)
        assert 0.0 <= value <= 1.0
        assert abs(value - rank_biased_overlap(b, a)) < 1e-9

    @given(rankings)
    def test_kendall_self_is_one(self, ranking):
        assert kendall_tau(ranking, ranking) == 1.0

    @given(rankings, rankings)
    def test_kendall_bounded_and_symmetric(self, a, b):
        value = kendall_tau(a, b)
        assert -1.0 <= value <= 1.0
        assert abs(value - kendall_tau(b, a)) < 1e-12

    @given(rankings)
    def test_kendall_reversal_negates(self, ranking):
        if len(ranking) >= 2:
            assert kendall_tau(ranking, list(reversed(ranking))) == -1.0

    @given(rankings, rankings, st.integers(min_value=1, max_value=5))
    def test_top_k_bounded(self, a, b, k):
        assert 0.0 <= top_k_overlap(a, b, k=k) <= 1.0


class TestStatsProperties:
    @settings(max_examples=50)
    @given(samples, samples)
    def test_mann_whitney_pvalue_in_unit_interval(self, a, b):
        result = mann_whitney_u(a, b)
        assert 0.0 <= result.p_value <= 1.0

    @settings(max_examples=50)
    @given(samples, samples)
    def test_mann_whitney_symmetric_pvalue(self, a, b):
        assert abs(
            mann_whitney_u(a, b).p_value - mann_whitney_u(b, a).p_value
        ) < 1e-9

    @settings(max_examples=30)
    @given(samples, st.integers(min_value=0, max_value=100))
    def test_bootstrap_interval_ordered_and_anchored(self, values, seed):
        ci = bootstrap_ci(values, seed=seed, resamples=200)
        assert ci.low <= ci.high
        assert min(values) - 1e-9 <= ci.low
        assert ci.high <= max(values) + 1e-9


class TestPlottingProperties:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abc", min_size=1, max_size=6),
                st.floats(min_value=0, max_value=1000, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_bar_chart_always_renders(self, rows):
        chart = BarChart(title="t", width=20)
        for index, (label, value) in enumerate(rows):
            chart.add(f"{label}{index}", value)
        text = chart.render()
        assert text.startswith("t")
        assert len(text.splitlines()) == len(rows) + 2

    @settings(max_examples=40)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    def test_line_chart_always_renders(self, values):
        chart = LineChart(title="t", width=20, height=6)
        chart.add_series("s", values)
        text = chart.render()
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 6
        assert len({len(r) for r in rows}) == 1
