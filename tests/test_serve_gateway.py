"""Gateway behaviour: routing, admission control, resilience, parity.

The parity test is the subsystem's anchor: a crawl routed through the
gateway must be byte-identical to the direct in-process crawl for every
routing policy, because replica choice is a capacity decision, never a
ranking input.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import DatacenterCluster
from repro.engine.request import ResponseStatus, SearchRequest
from repro.geo.coords import LatLon
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.corpus import build_corpus
from repro.serve import (
    ClientPopulation,
    Gateway,
    LoadGenerator,
    ReplicaQueue,
    build_replicas,
    make_policy,
    run_load,
)
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)
THE_DALLES = LatLon(45.5946, -121.1787)


@pytest.fixture(scope="module")
def world():
    return WebWorld(21)


def _fleet(world, count=3, **replica_kwargs):
    cluster = DatacenterCluster(count=count)
    geoip = GeoIPDatabase()
    replicas = build_replicas(
        world, cluster, geoip, corpus=build_corpus(), seed=21, **replica_kwargs
    )
    return cluster, geoip, replicas


def _request(cluster, minute, *, gps=CLEVELAND, nonce=0, ip="100.64.0.9", query="School"):
    return SearchRequest(
        query_text=query,
        client_ip=IPv4Address.parse(ip),
        frontend_ip=cluster[0].frontend_ip,
        timestamp_minutes=minute,
        gps=gps,
        nonce=nonce,
    )


class TestRouting:
    def test_round_robin_spreads_evenly(self, world):
        cluster, geoip, replicas = _fleet(world)
        gateway = Gateway(replicas, geoip, policy="round-robin")
        for i in range(6):
            gateway.submit(_request(cluster, float(i), nonce=i))
        assert sorted(gateway.stats.replica_requests.values()) == [2, 2, 2]

    def test_least_outstanding_prefers_idle_replica(self, world):
        cluster, geoip, replicas = _fleet(world)
        gateway = Gateway(replicas, geoip, policy="least-outstanding")
        # Pre-load two replicas with in-flight work.
        replicas[0].queue.try_admit(0.0)
        replicas[1].queue.try_admit(0.0)
        result = gateway.submit(_request(cluster, 0.0))
        assert result.served_by == replicas[2].name

    def test_geo_affinity_routes_to_nearest_datacenter(self, world):
        cluster, geoip, replicas = _fleet(world, count=6)
        gateway = Gateway(replicas, geoip, policy="geo-affinity")
        # dc01 sits in The Dalles, OR; a fix next door must land there.
        result = gateway.submit(_request(cluster, 0.0, gps=THE_DALLES))
        assert result.served_by == "dc01"
        # Cleveland is closest to Council Bluffs? No — to dc04 (Lenoir
        # NC) vs dc00 (Council Bluffs IA): assert only that the choice
        # is the true nearest, however the sites move.
        nearest = min(
            replicas,
            key=lambda r: CLEVELAND.distance_miles(r.datacenter.location),
        )
        result = gateway.submit(_request(cluster, 1.0, gps=CLEVELAND))
        assert result.served_by == nearest.name

    def test_geo_affinity_uses_geoip_for_gpsless_requests(self, world):
        cluster, geoip, replicas = _fleet(world, count=6)
        geoip.add_host(IPv4Address.parse("100.64.0.9"), THE_DALLES)
        gateway = Gateway(replicas, geoip, policy="geo-affinity")
        result = gateway.submit(_request(cluster, 0.0, gps=None))
        assert result.served_by == "dc01"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("random")


class TestAdmission:
    def test_spills_to_next_replica_under_backpressure(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=1, service_minutes=5.0
        )
        gateway = Gateway(replicas, geoip, policy="round-robin")
        first = gateway.submit(_request(cluster, 0.0, nonce=1))
        second = gateway.submit(_request(cluster, 0.0, nonce=2))
        assert {first.served_by, second.served_by} == {"dc00", "dc01"}

    def test_sheds_when_every_queue_is_full(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=1, service_minutes=5.0
        )
        gateway = Gateway(replicas, geoip, policy="round-robin", max_retries=0)
        gateway.submit(_request(cluster, 0.0, nonce=1))
        gateway.submit(_request(cluster, 0.0, nonce=2))
        shed = gateway.submit(_request(cluster, 0.0, nonce=3))
        assert shed.response.status is ResponseStatus.OVERLOADED
        assert shed.served_by == "shed"
        assert gateway.stats.rejected == 1

    def test_queue_drains_in_virtual_time(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=1, service_minutes=5.0
        )
        gateway = Gateway(replicas, geoip, max_retries=0)
        for nonce in range(3):
            gateway.submit(_request(cluster, 0.0, nonce=nonce))
        assert gateway.stats.rejected == 1
        # After the in-flight work completes, capacity is back.
        late = gateway.submit(_request(cluster, 20.0, nonce=9))
        assert late.response.ok

    def test_queue_wait_is_accounted(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=1, queue_capacity=4, service_minutes=2.0
        )
        gateway = Gateway(replicas, geoip)
        a = gateway.submit(_request(cluster, 0.0, nonce=1))
        b = gateway.submit(_request(cluster, 0.0, nonce=2))
        assert a.wait_minutes == 0.0
        assert b.wait_minutes == pytest.approx(2.0)
        assert b.latency_minutes == pytest.approx(4.0)

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            ReplicaQueue(capacity=0)


class TestResilience:
    def test_retries_rate_limited_responses_with_backoff(self, world):
        calibration = EngineCalibration(ratelimit_max_per_minute=1)
        cluster, geoip, replicas = _fleet(world, count=1)
        # Rebuild with the tight rate limit.
        replicas = build_replicas(
            world, cluster, geoip, corpus=build_corpus(), seed=21,
            calibration=calibration,
        )
        gateway = Gateway(replicas, geoip, retry_backoff_minutes=1.5, max_retries=2)
        assert gateway.submit(_request(cluster, 0.0, nonce=1)).response.ok
        # Second request inside the window trips the limiter; the
        # gateway's backoff pushes the retry past it.
        result = gateway.submit(_request(cluster, 0.1, nonce=2))
        assert result.response.ok
        assert result.attempts == 2
        assert gateway.stats.retries == 1
        assert gateway.stats.rate_limited == 1

    def test_gives_up_after_max_retries(self, world):
        calibration = EngineCalibration(ratelimit_max_per_minute=1)
        cluster, geoip, _ = _fleet(world, count=1)
        replicas = build_replicas(
            world, cluster, geoip, corpus=build_corpus(), seed=21,
            calibration=calibration,
        )
        gateway = Gateway(replicas, geoip, retry_backoff_minutes=0.1, max_retries=1)
        gateway.submit(_request(cluster, 0.0, nonce=1))
        # Backoff 0.1 min never leaves the 1-minute window: both the
        # attempt and its retry are rate-limited.
        result = gateway.submit(_request(cluster, 0.1, nonce=2))
        assert result.response.status is ResponseStatus.RATE_LIMITED
        assert result.attempts == 2

    def test_hedges_long_queue_waits(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=8, service_minutes=2.0
        )
        gateway = Gateway(
            replicas, geoip, policy="round-robin", hedge_after_minutes=0.5
        )
        gateway.submit(_request(cluster, 0.0, nonce=1))  # dc00 busy
        gateway.submit(_request(cluster, 0.0, nonce=2))  # dc01 busy
        # Round-robin points back at dc00 whose wait is now 2 min; the
        # hedge fires at dc01... also busy, so the hedge slot waits too,
        # but both are admitted and the earlier completion wins.
        result = gateway.submit(_request(cluster, 0.0, nonce=3))
        assert result.hedged
        assert gateway.stats.hedges == 1

    def test_hedge_not_fired_when_wait_is_short(self, world):
        cluster, geoip, replicas = _fleet(world, count=2)
        gateway = Gateway(replicas, geoip, hedge_after_minutes=0.5)
        gateway.submit(_request(cluster, 0.0, nonce=1))
        assert gateway.stats.hedges == 0


class TestDegradedServing:
    def _gateway(self, world, **kwargs):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=1, service_minutes=5.0
        )
        gateway = Gateway(
            replicas, geoip, cache_size=8, max_retries=0,
            serve_stale_when_down=True, **kwargs,
        )
        return cluster, gateway

    def _warm_then_outage(self, cluster, gateway):
        """Cache School on day 0, expire it into the stale store on day
        1, then fill every replica queue.  Returns the outage minute."""
        assert gateway.submit(_request(cluster, 0.0, nonce=1)).response.ok
        day1 = 1440.0
        warm = gateway.submit(_request(cluster, day1, nonce=2, query="Jobs"))
        assert warm.response.ok  # its put() sweeps day-0 School into stale
        outage = day1 + 1.0
        for replica in gateway.replicas:
            replica.queue.try_admit(outage)
        return outage

    def test_serves_stale_with_degraded_flag_when_all_replicas_down(self, world):
        cluster, gateway = self._gateway(world)
        fresh = gateway.submit(_request(cluster, 0.0, nonce=1))
        outage = self._warm_then_outage(cluster, gateway)
        result = gateway.submit(_request(cluster, outage, nonce=3))
        assert result.degraded
        assert result.response.degraded
        assert result.response.ok
        assert result.served_by == "stale-cache"
        assert result.response.html == fresh.response.html
        assert gateway.stats.degraded_served == 1
        assert gateway.stats.rejected == 0

    def test_degraded_response_is_not_recached(self, world):
        cluster, gateway = self._gateway(world)
        outage = self._warm_then_outage(cluster, gateway)
        gateway.submit(_request(cluster, outage, nonce=3))
        key = gateway.cache.key_for(
            gateway.dialect.name, "School", CLEVELAND, 1,
            datacenter=gateway.cluster.by_ip(cluster[0].frontend_ip).name,
        )
        assert key not in gateway.cache

    def test_sheds_without_stale_inventory(self, world):
        cluster, gateway = self._gateway(world)
        outage = self._warm_then_outage(cluster, gateway)
        shed = gateway.submit(
            _request(cluster, outage, nonce=4, query="Weather")
        )
        assert shed.response.status is ResponseStatus.OVERLOADED
        assert gateway.stats.rejected == 1

    def test_session_requests_never_served_stale(self, world):
        cluster, gateway = self._gateway(world)
        outage = self._warm_then_outage(cluster, gateway)
        from dataclasses import replace as dc_replace

        cookied = dc_replace(_request(cluster, outage, nonce=5), cookie_id="c1")
        result = gateway.submit(cookied)
        assert result.response.status is ResponseStatus.OVERLOADED
        assert gateway.stats.degraded_served == 0

    def test_disabled_by_default(self, world):
        cluster, geoip, replicas = _fleet(
            world, count=2, queue_capacity=1, service_minutes=5.0
        )
        gateway = Gateway(replicas, geoip, cache_size=8, max_retries=0)
        assert gateway.submit(_request(cluster, 0.0, nonce=1)).response.ok
        day1 = 1440.0
        assert gateway.submit(
            _request(cluster, day1, nonce=2, query="Jobs")
        ).response.ok
        outage = day1 + 1.0
        for replica in gateway.replicas:
            replica.queue.try_admit(outage)
        result = gateway.submit(_request(cluster, outage, nonce=3))
        assert result.response.status is ResponseStatus.OVERLOADED

    def test_replica_health_tracks_breaker_state(self, world):
        from repro.faults.breaker import BreakerBoard

        cluster, geoip, replicas = _fleet(world, count=2)
        board = BreakerBoard()
        gateway = Gateway(replicas, geoip, breakers=board)
        health = gateway.replica_health(0.0)
        assert all(entry["health"] == "healthy" for entry in health.values())
        for _ in range(10):
            board.record_failure("dc00", 0.0)
        health = gateway.replica_health(0.0)
        assert health["dc00"]["health"] == "quarantined"
        assert health["dc00"]["breaker"] == "open"
        assert health["dc01"]["health"] == "healthy"
        assert "queue_depth" in health["dc01"]


class TestNetworkCompatibility:
    def test_gateway_quacks_like_an_engine(self, world):
        cluster, geoip, replicas = _fleet(world)
        gateway = Gateway(replicas, geoip)
        assert gateway.dialect.hostname == "search.example.com"
        response = gateway.handle(_request(cluster, 0.0))
        assert response.ok and "card" in response.html


def _dataset_bytes(dataset) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in dataset
    ).encode()


class TestStudyParity:
    """Gateway-routed crawls are byte-identical to direct crawls."""

    @pytest.fixture(scope="class")
    def parity_config(self):
        corpus = build_corpus()
        queries = [
            corpus.get("School"),
            corpus.get("Starbucks"),
            corpus.get("Gay Marriage"),
            corpus.get("Barack Obama"),
        ]
        return StudyConfig.small(queries, days=1, locations_per_granularity=2)

    @pytest.fixture(scope="class")
    def direct_bytes(self, parity_config):
        return _dataset_bytes(Study(parity_config).run())

    @pytest.mark.parametrize(
        "policy", ["round-robin", "least-outstanding", "geo-affinity"]
    )
    def test_parity_per_policy(self, parity_config, direct_bytes, policy):
        config = parity_config.with_overrides(
            route_via_gateway=True, gateway_routing=policy
        )
        study = Study(config)
        dataset = study.run()
        assert _dataset_bytes(dataset) == direct_bytes
        assert not study.failures
        assert study.gateway is not None
        assert study.gateway.stats.rejected == 0
        assert study.gateway.stats.admitted == study.gateway.stats.requests

    def test_cookied_crawl_bypasses_cache_keeping_parity(
        self, parity_config, direct_bytes
    ):
        # Study browsers always present a cookie, so even an enabled
        # cache never engages for the crawl: every request bypasses,
        # nothing is canonicalised, and parity survives.
        config = parity_config.with_overrides(
            route_via_gateway=True, gateway_cache_size=4096
        )
        study = Study(config)
        assert _dataset_bytes(study.run()) == direct_bytes
        assert study.gateway.stats.cache_bypasses == study.gateway.stats.requests

    def test_gateway_study_spreads_load(self, parity_config):
        config = parity_config.with_overrides(
            route_via_gateway=True, gateway_routing="round-robin"
        )
        study = Study(config)
        study.run()
        assert len(study.gateway.stats.replica_requests) == len(study.cluster)

    def test_unknown_routing_rejected_at_config(self, parity_config):
        with pytest.raises(ValueError, match="gateway_routing"):
            parity_config.with_overrides(
                route_via_gateway=True, gateway_routing="nope"
            )


class TestLoadGenerator:
    @pytest.fixture(scope="class")
    def cluster(self):
        return DatacenterCluster()

    def test_streams_are_seed_deterministic(self, cluster):
        corpus = build_corpus()
        population = ClientPopulation.generate(5, 40, cluster)
        a = list(LoadGenerator(list(corpus), population, 5).requests(100))
        b = list(LoadGenerator(list(corpus), population, 5).requests(100))
        assert a == b
        c = list(LoadGenerator(list(corpus), population, 6).requests(100))
        assert a != c

    def test_arrivals_are_non_decreasing(self, cluster):
        corpus = build_corpus()
        population = ClientPopulation.generate(5, 40, cluster)
        stream = list(LoadGenerator(list(corpus), population, 5).requests(200))
        times = [r.timestamp_minutes for r in stream]
        assert times == sorted(times)

    def test_popularity_is_skewed(self, cluster):
        corpus = build_corpus()
        population = ClientPopulation.generate(5, 40, cluster)
        stream = list(LoadGenerator(list(corpus), population, 5).requests(500))
        counts: dict = {}
        for request in stream:
            counts[request.query_text] = counts.get(request.query_text, 0) + 1
        top = max(counts.values())
        # Zipf head: the most popular term dwarfs the uniform share.
        assert top > 3 * (500 / len(corpus))

    def test_population_registers_geoip(self, cluster):
        population = ClientPopulation.generate(5, 10, cluster)
        geoip = GeoIPDatabase()
        population.register(geoip)
        client = population[0]
        assert geoip.lookup(client.ip) == client.home

    def test_pinned_frontend(self, cluster):
        population = ClientPopulation.generate(5, 10, cluster, pin_frontend=True)
        assert {c.frontend_ip for c in population} == {cluster[0].frontend_ip}

    def test_run_load_reports(self, world, cluster):
        geoip = GeoIPDatabase()
        corpus = build_corpus()
        replicas = build_replicas(world, cluster, geoip, corpus=corpus, seed=21)
        gateway = Gateway(replicas, geoip, cache_size=128)
        population = ClientPopulation.generate(5, 30, cluster)
        population.register(geoip)
        loadgen = LoadGenerator(list(corpus), population, 5, rate_per_minute=20.0)
        report = run_load(gateway, loadgen, 150)
        assert report.ok + report.rate_limited + report.overloaded == 150
        assert report.requests_per_second > 0
        assert gateway.stats.cache_lookups == 150
        rendered = report.render()
        assert "req/s" in rendered and "hit-rate" in rendered
