"""Fleet behaviour: ring maths, parity, the degradation ladder.

The two anchors mirror the issue's acceptance bar: the remap-bound
test pins consistent hashing's reason to exist (adding a shard moves
at most ~2/N of the keyspace), and the parity test pins that with
replication 1, hot promotion off, and no faults the fleet is
byte-identical to the single gateway it fronts.
"""

from __future__ import annotations

import pytest

from repro.engine.datacenters import DatacenterCluster
from repro.engine.request import ResponseStatus, SearchRequest
from repro.geo.coords import LatLon
from repro.net.ip import IPv4Address
from repro.queries.corpus import build_corpus
from repro.serve import (
    BrownoutPolicy,
    Gateway,
    GatewayFleet,
    HashRing,
    LazyClientPopulation,
    LoadGenerator,
    ZipfSampler,
    build_fleet,
    build_fleet_registry,
    build_replicas,
    shard_key_of,
)
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)
DAY = 1440.0


@pytest.fixture(scope="module")
def world():
    return WebWorld(21)


def _population(count=10_000, seed=21):
    cluster = DatacenterCluster()
    population = LazyClientPopulation(seed, count, cluster)
    return cluster, population


def _build(world, count=3, **kwargs):
    cluster, population = _population()
    fleet = build_fleet(
        world,
        cluster,
        population.geoip_view(),
        count=count,
        corpus=build_corpus(),
        seed=21,
        **kwargs,
    )
    return cluster, population, fleet


def _request(cluster, minute, *, gps=CLEVELAND, nonce=0, query="School"):
    return SearchRequest(
        query_text=query,
        client_ip=IPv4Address.parse("100.64.0.9"),
        frontend_ip=cluster[0].frontend_ip,
        timestamp_minutes=minute,
        gps=gps,
        nonce=nonce,
    )


class TestHashRing:
    def test_rejects_empty_duplicate_and_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_owners_are_distinct_and_clamped(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        owners = ring.owners(HashRing.hash_key(("q", 1)), 3)
        assert len(owners) == len(set(owners)) == 3
        assert ring.owners(0, 99) == ring.owners(0, 4)

    def test_placement_is_deterministic(self):
        a = HashRing(["x", "y", "z"])
        b = HashRing(["z", "y", "x"])  # order-insensitive
        for i in range(100):
            h = HashRing.hash_key(("key", i))
            assert a.owners(h, 2) == b.owners(h, 2)

    def test_distribution_is_roughly_balanced(self):
        names = [f"s{i}" for i in range(8)]
        ring = HashRing(names, vnodes=64)
        counts = {name: 0 for name in names}
        total = 4000
        for i in range(total):
            counts[ring.owners(HashRing.hash_key(("q", i)), 1)[0]] += 1
        mean = total / len(names)
        for name, count in counts.items():
            assert 0.4 * mean <= count <= 2.0 * mean, (name, count)

    def test_adding_a_shard_moves_at_most_two_over_n(self):
        n = 5
        before = HashRing([f"s{i}" for i in range(n)])
        after = HashRing([f"s{i}" for i in range(n + 1)])
        total = 2000
        moved = sum(
            1
            for i in range(total)
            if before.owners(HashRing.hash_key(("q", i)), 1)
            != after.owners(HashRing.hash_key(("q", i)), 1)
        )
        assert 0 < moved <= total * 2 / n

    def test_removing_a_shard_moves_at_most_two_over_n(self):
        n = 5
        before = HashRing([f"s{i}" for i in range(n)])
        after = HashRing([f"s{i}" for i in range(n) if i != 2])
        total = 2000
        moved = 0
        for i in range(total):
            h = HashRing.hash_key(("q", i))
            if before.owners(h, 1) != after.owners(h, 1):
                moved += 1
                # Every move must be off the removed shard.
                assert before.owners(h, 1) == ["s2"]
        assert 0 < moved <= total * 2 / (n - 1)


class TestRouting:
    def test_shard_key_drops_the_virtual_day(self):
        day0 = ("en", "school", 10, -4, 0, 0, "dc00")
        day7 = ("en", "school", 10, -4, 7, 0, "dc00")
        assert shard_key_of(day0) == shard_key_of(day7)

    def test_primary_is_stable_across_day_rollover(self, world):
        _, _, fleet = _build(world)
        day0 = ("en", "school", 10, -4, 0, 0, "dc00")
        day7 = ("en", "school", 10, -4, 7, 0, "dc00")
        assert fleet.shard_for(day0) == fleet.shard_for(day7)

    def test_replication_clamps_to_fleet_size(self, world):
        _, _, fleet = _build(world, count=2, replication=5)
        assert fleet.replication == 2

    def test_keys_spread_over_shards(self, world):
        cluster, _, fleet = _build(world, count=3)
        queries = sorted(q.text for q in build_corpus())[:12]
        for i, text in enumerate(queries):
            fleet.submit(_request(cluster, float(i), nonce=i, query=text))
        assert len(fleet.stats.shard_requests) > 1
        assert fleet.stats.unaccounted() == 0


class TestParity:
    def test_r1_no_faults_matches_single_gateway(self, world):
        """The fleet in parity mode serves the single gateway's bytes."""
        cluster, population = _population()
        geoip = population.geoip_view()
        corpus = build_corpus()
        kwargs = dict(corpus=corpus, seed=21, queue_capacity=64)
        fleet = build_fleet(
            world,
            cluster,
            geoip,
            count=3,
            replication=1,
            hot_key_threshold=None,
            cache_size=1024,
            **kwargs,
        )
        replicas = build_replicas(world, cluster, geoip, **kwargs)
        single = Gateway(replicas, geoip, cache_size=1024)
        requests = list(
            LoadGenerator(
                list(corpus), population, 21, rate_per_minute=20.0
            ).requests(200)
        )
        for request in requests:
            ours = fleet.handle(request)
            theirs = single.handle(request)
            assert ours.status is theirs.status
            assert ours.html == theirs.html
        assert fleet.stats.served_fresh == 200
        assert fleet.stats.unaccounted() == 0


class TestHotKeys:
    def test_hot_key_promoted_and_spread(self, world):
        cluster, _, fleet = _build(
            world, count=3, replication=1, hot_key_threshold=5
        )
        for i in range(30):
            fleet.submit(_request(cluster, float(i), nonce=i))
        assert fleet.stats.hot_promotions == 1
        assert fleet.stats.hot_requests > 0
        # A promoted key is served by every shard, not just its owner.
        assert len(fleet.stats.shard_requests) == 3
        assert fleet.stats.unaccounted() == 0


class TestLadder:
    def test_partitioned_primary_reroutes_to_replica(self, world):
        cluster, _, fleet = _build(world, count=3, replication=2)
        request = _request(cluster, 0.0, nonce=1)
        _, owners, _ = fleet._route(request)
        fleet.shards[owners[0]].partitioned_until = 10_000.0
        result = fleet.submit(request)
        assert result.response.ok and not result.degraded
        assert fleet.stats.rerouted == 1
        assert fleet.stats.served_fresh == 1

    def test_fleet_stale_rung_when_every_owner_is_dark(self, world):
        cluster, _, fleet = _build(world, count=3, replication=1)
        request = _request(cluster, 10.0, nonce=1)
        key, owners, _ = fleet._route(request)
        # Warm a non-owner peer's cache, then retire the entry into its
        # stale store by looking it up on the next virtual day.
        peer = next(n for n in fleet.shard_names if n not in owners)
        fresh = fleet.shards[peer].gateway.submit(request)
        assert fresh.response.ok
        assert fleet.shards[peer].gateway.cache.get(key, DAY + 1.0) is None
        fleet.shards[owners[0]].partitioned_until = 10 * DAY
        late = _request(cluster, DAY + 2.0, nonce=2)
        result = fleet.submit(late)
        assert result.degraded
        assert result.served_by.endswith(":stale-fleet")
        assert result.response.html == fresh.response.html
        assert fleet.stats.fleet_stale_served == 1
        assert fleet.stats.served_stale == 1

    def test_owners_dark_with_no_stale_sheds(self, world):
        cluster, _, fleet = _build(world, count=3, replication=1)
        request = _request(cluster, 0.0, nonce=1)
        _, owners, _ = fleet._route(request)
        fleet.shards[owners[0]].partitioned_until = 10_000.0
        result = fleet.submit(request)
        assert result.response.status is ResponseStatus.OVERLOADED
        assert fleet.stats.shed == 1
        assert fleet.stats.unaccounted() == 0

    def test_crash_rejoin_backfills_owned_keys(self, world):
        cluster, _, fleet = _build(world, count=3, replication=2)
        request = _request(cluster, 0.0, nonce=1)
        key, owners, _ = fleet._route(request)
        primary = fleet.shards[owners[0]]
        # Crash the primary: process gone, cache and stale store lost.
        primary.down_until = 60.0
        primary.gateway.cache.clear()
        primary.needs_backfill = True
        mid = fleet.submit(_request(cluster, 1.0, nonce=2))
        assert mid.response.ok  # replica owner carried the key
        assert fleet.stats.rerouted == 1
        assert key not in primary.gateway.cache
        # First request past the outage heals the shard and backfills.
        fleet.submit(_request(cluster, 61.0, nonce=3))
        assert fleet.stats.backfills == 1
        assert fleet.stats.backfilled_entries >= 1
        assert key in primary.gateway.cache

    def test_backfill_does_not_count_as_peer_cache_traffic(self, world):
        cluster, _, fleet = _build(world, count=3, replication=2)
        request = _request(cluster, 0.0, nonce=1)
        key, owners, _ = fleet._route(request)
        fleet.submit(request)
        replica = fleet.shards[owners[1]]
        hits_before = replica.gateway.stats.cache_hits
        primary = fleet.shards[owners[0]]
        primary.down_until = 60.0
        primary.gateway.cache.clear()
        primary.needs_backfill = True
        fleet.submit(_request(cluster, 61.0, nonce=2))
        # peek()-based repair reads leave serving stats untouched.
        assert replica.gateway.stats.cache_hits <= hits_before + 1

    def test_brownout_enters_sheds_and_recovers(self, world):
        cluster, _, fleet = _build(
            world,
            count=2,
            replication=2,
            brownout=BrownoutPolicy(
                window_minutes=50.0,
                max_bad_fraction=0.5,
                shed_fraction=1.0,
                min_window_requests=5,
            ),
        )
        for shard in fleet.shards.values():
            shard.partitioned_until = 100.0
        # Five owners-dark sheds fill the window; the sixth request's
        # pre-routing SLO check trips the controller.
        for i in range(6):
            fleet.submit(_request(cluster, float(i), nonce=i))
        assert fleet.browned_out
        assert fleet.stats.brownout_entries == 1
        assert fleet.stats.brownout_shed >= 1
        # Past the outage and the window, the controller lets go.
        result = fleet.submit(_request(cluster, 200.0, nonce=99))
        assert not fleet.browned_out
        assert result.response.ok
        assert fleet.stats.unaccounted() == 0


class TestStaleStoreBounds:
    def test_stale_store_stays_bounded_under_sustained_outage(self, world):
        """A replica outage must not let the stale store grow past the
        cache capacity, however many distinct keys retire into it."""
        cluster, _, fleet = _build(
            world, count=2, replication=1, cache_size=8
        )
        shard = next(iter(fleet.shards.values()))
        cache = shard.gateway.cache
        queries = sorted(q.text for q in build_corpus())
        # Day 0: cache more distinct keys than capacity allows...
        for i, text in enumerate(queries[:16]):
            fleet.submit(_request(cluster, float(i), nonce=i, query=text))
        # ...then roll the day so every lookup retires its predecessor.
        for i, text in enumerate(queries[:16]):
            fleet.submit(
                _request(cluster, DAY + float(i), nonce=100 + i, query=text)
            )
        for shard in fleet.shards.values():
            assert len(shard.gateway.cache._stale) <= cache.capacity
        assert fleet.stats.unaccounted() == 0


class TestRegistry:
    def test_fleet_registry_exposes_outcomes_and_shards(self, world):
        cluster, _, fleet = _build(world, count=2)
        registry = build_fleet_registry(fleet)
        fleet.submit(_request(cluster, 0.0, nonce=1))
        rendered = registry.render_prometheus()
        assert "fleet_requests 1" in rendered
        assert "fleet_served_fresh 1" in rendered
        assert 'fleet_shard_requests{shard="' in rendered
        assert "shard_shard_00_cache_hits" in rendered


class TestLazyPopulation:
    def test_lazy_client_is_pure_and_stable(self):
        cluster, population = _population(count=1_000_000)
        first = population.client(999_999)
        again = population.client(999_999)
        assert first == again
        assert first.ip.value - population.client(0).ip.value == 999_999

    def test_geoip_view_matches_client_homes(self):
        _, population = _population(count=500)
        geoip = population.geoip_view()
        for index in (0, 7, 499):
            client = population.client(index)
            assert geoip.lookup(client.ip) == client.home

    def test_count_exceeding_ip_space_rejected(self):
        cluster = DatacenterCluster()
        with pytest.raises(ValueError):
            LazyClientPopulation(0, (1 << 22), cluster)

    def test_register_is_refused(self):
        from repro.net.geoip import GeoIPDatabase

        _, population = _population(count=10)
        with pytest.raises(TypeError):
            population.register(GeoIPDatabase())

    def test_zipf_sampler_is_monotone_and_in_range(self):
        sampler = ZipfSampler(1_000_000, 1.0)
        last = -1
        for step in range(200):
            rank = sampler.sample(step / 200.0)
            assert 0 <= rank < 1_000_000
            assert rank >= last
            last = rank
        assert sampler.sample(0.0) == 0
        assert sampler.sample(0.999999) > sampler.head

    def test_zipf_head_carries_most_mass(self):
        sampler = ZipfSampler(1_000_000, 1.0)
        # Under s=1 the 4096-rank head holds ~60% of a 1e6-rank total.
        assert sampler._head_mass / sampler.total_mass > 0.55

    def test_lazy_loadgen_stream_is_deterministic(self):
        cluster, population = _population(count=100_000)
        corpus = list(build_corpus())
        a = list(LoadGenerator(corpus, population, 7).requests(50))
        b = list(LoadGenerator(corpus, population, 7).requests(50))
        assert a == b
