"""Tests for the search frontend and ranking behaviour.

These cover the engine behaviours the paper's findings rest on:
GPS-over-IP geolocation, grid snapping, card policies, noise sources,
session effects, and rate limiting.
"""

import pytest

from repro.engine.frontend import DEFAULT_LOCATION
from repro.engine.request import ResponseStatus
from repro.engine.serp import CardType
from repro.geo.coords import LatLon

CLEVELAND = LatLon(41.4993, -81.6944)
COLUMBUS = LatLon(39.9612, -82.9988)
AUSTIN = LatLon(30.2672, -97.7431)


def links(page):
    return page.links()


class TestPageGeometry:
    def test_link_count_in_paper_range(self, engine, make_request):
        for term, nonce in (("School", 1), ("Starbucks", 2), ("Gay Marriage", 3),
                            ("Barack Obama", 4)):
            page = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=nonce))
            assert 12 <= len(links(page)) <= 22, term

    def test_organic_cards_have_single_link(self, engine, make_request):
        page = engine.serve_page(make_request("School", gps=CLEVELAND))
        for card in page.cards:
            if card.card_type is CardType.ORGANIC:
                assert len(card.documents) == 1

    def test_no_duplicate_links_within_organic(self, engine, make_request):
        page = engine.serve_page(make_request("School", gps=CLEVELAND))
        organic = [
            str(card.documents[0].url)
            for card in page.cards
            if card.card_type is CardType.ORGANIC
        ]
        assert len(set(organic)) == len(organic)

    def test_footer_reports_request_location(self, engine, make_request):
        page = engine.serve_page(make_request("School", gps=CLEVELAND))
        assert page.reported_location == CLEVELAND


class TestCardPolicies:
    def test_generic_local_usually_has_maps(self, engine, make_request):
        with_maps = sum(
            engine.serve_page(
                make_request("School", gps=CLEVELAND, nonce=i)
            ).card_count(CardType.MAPS)
            for i in range(40)
        )
        assert with_maps >= 25  # ~85% gate

    def test_brand_rarely_has_maps(self, engine, make_request):
        # Paper: brand queries "typically do not yield Maps results".
        with_maps = sum(
            engine.serve_page(
                make_request("Starbucks", gps=CLEVELAND, nonce=i)
            ).card_count(CardType.MAPS)
            for i in range(40)
        )
        assert with_maps <= 5

    def test_non_local_never_has_maps(self, engine, make_request):
        for i in range(10):
            page = engine.serve_page(make_request("Gay Marriage", gps=CLEVELAND, nonce=i))
            assert page.card_count(CardType.MAPS) == 0

    def test_local_never_has_news(self, engine, make_request):
        for i in range(10):
            page = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=i))
            assert page.card_count(CardType.NEWS) == 0

    def test_some_controversial_terms_have_news(self, engine, make_request):
        from repro.queries.controversial import CONTROVERSIAL_TERMS

        cards = sum(
            engine.serve_page(
                make_request(term, gps=CLEVELAND, nonce=7)
            ).card_count(CardType.NEWS)
            for term in CONTROVERSIAL_TERMS[:25]
        )
        assert cards > 0

    def test_news_gate_is_stable_within_a_day(self, engine, make_request):
        # Unlike Maps, News presence must not flicker between a
        # treatment and its control (paper: News causes ~zero noise).
        for term in ("Gay Marriage", "Gun Control", "Fracking"):
            counts = {
                engine.serve_page(
                    make_request(term, gps=CLEVELAND, nonce=i)
                ).card_count(CardType.NEWS)
                for i in range(6)
            }
            assert len(counts) == 1


class TestGeolocationPriority:
    def test_gps_wins_over_ip(self, engine, make_request):
        # Same GPS from different client IPs -> nearly identical pages.
        from repro.net.geoip import GeoIPDatabase

        engine.geoip.add_host(
            __import__("repro.net.ip", fromlist=["IPv4Address"]).IPv4Address.parse(
                "203.0.113.5"
            ),
            AUSTIN,
        )
        page_default_ip = engine.serve_page(
            make_request("School", gps=CLEVELAND, nonce=5)
        )
        page_texan_ip = engine.serve_page(
            make_request("School", gps=CLEVELAND, nonce=5, ip="203.0.113.5")
        )
        assert links(page_default_ip) == links(page_texan_ip)

    def test_ip_fallback_when_no_gps(self, engine, make_request):
        from repro.net.ip import IPv4Address

        engine.geoip.add_host(IPv4Address.parse("203.0.113.5"), AUSTIN)
        engine.geoip.add_host(IPv4Address.parse("203.0.113.6"), CLEVELAND)
        page_austin = engine.serve_page(make_request("School", nonce=5, ip="203.0.113.5"))
        page_cleveland = engine.serve_page(
            make_request("School", nonce=5, ip="203.0.113.6")
        )
        assert links(page_austin) != links(page_cleveland)

    def test_unknown_ip_gets_default_location(self, engine, make_request):
        page = engine.serve_page(make_request("School", nonce=5, ip="203.0.113.99"))
        assert page.reported_location == DEFAULT_LOCATION

    def test_gps_location_changes_results(self, engine, make_request):
        a = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=5))
        b = engine.serve_page(make_request("School", gps=AUSTIN, nonce=5))
        assert links(a) != links(b)


class TestSnapping:
    def test_points_in_same_cell_get_identical_pages(self, engine, make_request):
        a = engine.serve_page(make_request("School", gps=LatLon(41.4300, -81.6700), nonce=3))
        b = engine.serve_page(
            make_request("School", gps=LatLon(41.4301, -81.6701), nonce=3)
        )
        assert links(a) == links(b)

    def test_snapping_off_differentiates_same_cell_points(self, world, corpus, make_request):
        from repro.engine import DatacenterCluster, SearchEngine
        from repro.engine.calibration import EngineCalibration
        from repro.engine.request import SearchRequest
        from repro.net.geoip import GeoIPDatabase
        from repro.net.ip import IPv4Address

        engine = SearchEngine(
            world,
            DatacenterCluster(),
            GeoIPDatabase(),
            corpus=corpus,
            calibration=EngineCalibration(snap_to_grid=False),
            seed=1,
        )

        def request(gps):
            return SearchRequest(
                query_text="School",
                client_ip=IPv4Address.parse("192.0.2.10"),
                frontend_ip=engine.cluster[0].frontend_ip,
                timestamp_minutes=10.0,
                gps=gps,
                nonce=3,
            )

        a = engine.serve_page(request(LatLon(41.4300, -81.6700)))
        b = engine.serve_page(request(LatLon(41.4390, -81.6790)))
        assert links(a) != links(b)


class TestNoiseSources:
    def test_different_nonces_can_differ(self, engine, make_request):
        # Treatment/control noise: same everything, different nonce.
        diffs = 0
        for i in range(12):
            a = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=1000 + i))
            b = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=2000 + i))
            if links(a) != links(b):
                diffs += 1
        assert diffs > 0

    def test_same_nonce_is_deterministic(self, engine, make_request):
        a = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=42))
        b = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=42))
        assert links(a) == links(b)

    def test_politician_pages_stable_under_noise(self, engine, make_request):
        identical = 0
        for i in range(10):
            a = engine.serve_page(
                make_request("Barack Obama", gps=CLEVELAND, nonce=1000 + i)
            )
            b = engine.serve_page(
                make_request("Barack Obama", gps=CLEVELAND, nonce=2000 + i)
            )
            identical += links(a) == links(b)
        assert identical >= 7  # politicians are near-deterministic

    def test_datacenter_skew_changes_results(self, engine, make_request):
        same, diff = 0, 0
        for term in ("School", "Coffee", "Restaurant", "Bank", "Park"):
            a = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=9, frontend_index=0))
            b = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=9, frontend_index=1))
            if links(a) == links(b):
                same += 1
            else:
                diff += 1
        assert diff > 0  # unpinned DNS would add noise


class TestSessionPersonalization:
    def test_recent_search_biases_results(self, engine, make_request):
        # Search "Starbucks", then "Coffee" 5 minutes later with the same
        # cookie: the engine boosts starbucks.example.com into the page.
        engine.serve_page(make_request("Starbucks", gps=CLEVELAND, t=100.0, cookie="c1"))
        contaminated = engine.serve_page(
            make_request("Coffee", gps=CLEVELAND, t=105.0, nonce=5, cookie="c1")
        )
        fresh = engine.serve_page(
            make_request("Coffee", gps=CLEVELAND, t=105.0, nonce=5, cookie="other")
        )
        assert links(contaminated) != links(fresh)
        assert any("starbucks" in url for url in links(contaminated))

    def test_eleven_minute_wait_removes_carryover(self, engine, make_request):
        engine.serve_page(make_request("Starbucks", gps=CLEVELAND, t=100.0, cookie="c2"))
        later = engine.serve_page(
            make_request("Coffee", gps=CLEVELAND, t=111.5, nonce=5, cookie="c2")
        )
        fresh = engine.serve_page(
            make_request("Coffee", gps=CLEVELAND, t=111.5, nonce=5, cookie="fresh")
        )
        assert links(later) == links(fresh)

    def test_session_remembers_location_without_gps(self, engine, make_request):
        # First query carries GPS; second (same cookie, no GPS) must be
        # personalised for the remembered location, not the default.
        engine.serve_page(make_request("School", gps=CLEVELAND, t=50.0, cookie="c3"))
        remembered = engine.serve_page(
            make_request("School", t=55.0, nonce=8, cookie="c3")
        )
        assert remembered.reported_location == CLEVELAND


class TestRateLimiting:
    def test_hammering_one_ip_gets_captcha(self, engine, make_request):
        responses = [
            engine.handle(make_request("School", gps=CLEVELAND, nonce=i, t=10.0 + i * 0.001))
            for i in range(30)
        ]
        assert any(r.status is ResponseStatus.RATE_LIMITED for r in responses)
        assert responses[0].status is ResponseStatus.OK

    def test_spreading_over_ips_avoids_captcha(self, engine, make_request):
        for i in range(30):
            ip = f"192.0.2.{10 + i % 30}"
            response = engine.handle(
                make_request("School", gps=CLEVELAND, nonce=i, t=10.0 + i * 0.001, ip=ip)
            )
            assert response.status is ResponseStatus.OK
