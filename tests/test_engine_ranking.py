"""Unit tests of the ranking layer's score composition and the renderer."""

import pytest

from repro.engine.calibration import EngineCalibration
from repro.engine.ranking import Ranker, RankingContext
from repro.engine.render import render_page
from repro.engine.serp import CardType
from repro.geo.coords import LatLon
from repro.queries.corpus import build_corpus
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)
AUSTIN = LatLon(30.2672, -97.7431)


@pytest.fixture(scope="module")
def ranker_world():
    return WebWorld(808)


@pytest.fixture(scope="module")
def queries():
    corpus = build_corpus()
    return {
        "generic": corpus.get("School"),
        "brand": corpus.get("Starbucks"),
        "controversial": corpus.get("Gay Marriage"),
        "politician": corpus.get("Barack Obama"),
        "common": corpus.get("Bill Johnson"),
    }


def _ctx(location, *, day=0, dc="dc00", bucket=0, nonce=1):
    return RankingContext(
        location=location, day=day, datacenter=dc, bucket=bucket, nonce=nonce
    )


def _ranker(world, **overrides):
    return Ranker(world, EngineCalibration().with_overrides(**overrides), seed=808)


class TestStaticScoring:
    def test_poi_scores_decay_with_distance(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool = ranker._static_pool(queries["generic"], snapped, state, metro)
        pois = [
            (doc, score)
            for doc, score in pool
            if doc.kind.value == "local-business"
        ]
        assert pois
        for doc, score in pois:
            # The static score is base minus the distance penalty.
            assert score <= doc.base_score

    def test_pool_is_memoised(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        a = ranker._static_pool(queries["generic"], snapped, state, metro)
        b = ranker._static_pool(queries["generic"], snapped, state, metro)
        assert a is b

    def test_ambiguity_docs_decay_slowly(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        query = queries["common"]
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool = ranker._static_pool(query, snapped, state, metro)
        entities = [
            (doc, score)
            for doc, score in pool
            if doc.anchor is not None and doc.kind.value == "organic"
        ]
        assert entities
        for doc, score in entities:
            distance = __import__("repro.geo.coords", fromlist=["haversine_miles"]).haversine_miles(
                snapped, doc.anchor
            )
            expected = doc.base_score - 0.0035 * distance
            assert score == pytest.approx(expected)

    def test_index_bias_shifts_static_scores(self, ranker_world, queries):
        plain = _ranker(ranker_world)
        biased = _ranker(ranker_world, index_bias=1.0)
        snapped = plain._snap_grid.snap(CLEVELAND)
        state = plain._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool_a = dict(
            (doc.identity, score)
            for doc, score in plain._static_pool(queries["controversial"], snapped, state, metro)
        )
        pool_b = dict(
            (doc.identity, score)
            for doc, score in biased._static_pool(queries["controversial"], snapped, state, metro)
        )
        diffs = [abs(pool_a[url] - pool_b[url]) for url in pool_a]
        assert max(diffs) > 0.1

    def test_location_keying_changes_national_doc_scores(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        query = queries["generic"]
        snapped_a = ranker._snap_grid.snap(CLEVELAND)
        snapped_b = ranker._snap_grid.snap(AUSTIN)
        pool_a = {
            doc.identity: score
            for doc, score in ranker._static_pool(
                query, snapped_a, ranker._nearest_state(snapped_a),
                ranker_world.metro_grid.cell_of(snapped_a),
            )
            if doc.scope.value == "national"
        }
        pool_b = {
            doc.identity: score
            for doc, score in ranker._static_pool(
                query, snapped_b, ranker._nearest_state(snapped_b),
                ranker_world.metro_grid.cell_of(snapped_b),
            )
            if doc.scope.value == "national"
        }
        shared = set(pool_a) & set(pool_b)
        assert shared
        assert any(abs(pool_a[url] - pool_b[url]) > 0.05 for url in shared)


class TestDynamicScoring:
    def test_bucket_changes_jitter(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        page_a = ranker.build_page(queries["generic"], _ctx(CLEVELAND, bucket=1, nonce=1))
        pages_differ = False
        for bucket in range(2, 30):
            page_b = ranker.build_page(
                queries["generic"], _ctx(CLEVELAND, bucket=bucket, nonce=1)
            )
            if page_a.links() != page_b.links():
                pages_differ = True
                break
        assert pages_differ

    def test_datacenter_changes_scores(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        differs = False
        for nonce in range(5):
            a = ranker.build_page(queries["generic"], _ctx(CLEVELAND, dc="dc00", nonce=nonce))
            b = ranker.build_page(queries["generic"], _ctx(CLEVELAND, dc="dc01", nonce=nonce))
            if a.links() != b.links():
                differs = True
        assert differs

    def test_zero_noise_calibration_is_deterministic(self, ranker_world, queries):
        ranker = _ranker(
            ranker_world,
            ab_jitter_local=0.0,
            ab_jitter_national=0.0,
            datacenter_skew=0.0,
            maps_prob_generic=1.0,
        )
        pages = {
            tuple(
                ranker.build_page(
                    queries["generic"], _ctx(CLEVELAND, bucket=b, nonce=b, dc=f"dc0{b % 3}")
                ).links()
            )
            for b in range(6)
        }
        assert len(pages) == 1


class TestCardAssembly:
    def test_maps_insert_rank(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0, maps_insert_rank=1)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        assert page.cards[1].card_type is CardType.MAPS

    def test_maps_card_size(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0, maps_card_size=5)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        maps_card = next(c for c in page.cards if c.card_type is CardType.MAPS)
        assert len(maps_card.documents) == 5

    def test_organic_slots_respected(self, ranker_world, queries):
        ranker = _ranker(ranker_world, organic_slots=9, maps_prob_generic=0.0)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        assert page.card_count(CardType.ORGANIC) == 9

    def test_news_threshold_zero_gives_all_controversial_news(self, ranker_world, queries):
        ranker = _ranker(ranker_world, news_threshold_controversial=0.0)
        page = ranker.build_page(queries["controversial"], _ctx(CLEVELAND))
        assert page.card_count(CardType.NEWS) == 1

    def test_news_threshold_one_gives_none(self, ranker_world, queries):
        ranker = _ranker(ranker_world, news_threshold_controversial=1.0)
        page = ranker.build_page(queries["controversial"], _ctx(CLEVELAND))
        assert page.card_count(CardType.NEWS) == 0

    def test_organic_results_sorted_by_total_score(self, ranker_world, queries):
        # With zero dynamic noise, organic order must equal static-score
        # order.
        ranker = _ranker(
            ranker_world,
            ab_jitter_local=0.0,
            ab_jitter_national=0.0,
            datacenter_skew=0.0,
            maps_prob_generic=0.0,
        )
        query = queries["generic"]
        ctx = _ctx(CLEVELAND)
        page = ranker.build_page(query, ctx)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        pool = ranker._static_pool(
            query, snapped, ranker._nearest_state(snapped),
            ranker_world.metro_grid.cell_of(snapped),
        )
        scores = {doc.identity: score for doc, score in pool}
        organic_urls = [
            str(card.documents[0].url)
            for card in page.cards
            if card.card_type is CardType.ORGANIC
        ]
        organic_scores = [scores[url] for url in organic_urls]
        assert organic_scores == sorted(organic_scores, reverse=True)


class TestRenderer:
    def test_rank_attributes_sequential(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        html = render_page(page)
        for index in range(1, len(page.cards) + 1):
            assert f'data-rank="{index}"' in html

    def test_titles_escaped(self, ranker_world):
        corpus = build_corpus()
        query = corpus.get("Wendy's")
        ranker = _ranker(ranker_world)
        html = render_page(ranker.build_page(query, _ctx(CLEVELAND)))
        assert "Wendy&#x27;s" in html or "Wendy's" in html
        assert "<script" not in html
