"""Unit tests of the ranking layer's score composition and the renderer."""

import pytest

from repro.engine.calibration import EngineCalibration
from repro.engine.ranking import Ranker, RankingContext
from repro.engine.render import render_page
from repro.engine.serp import CardType
from repro.geo.coords import LatLon
from repro.queries.corpus import build_corpus
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)
AUSTIN = LatLon(30.2672, -97.7431)


@pytest.fixture(scope="module")
def ranker_world():
    return WebWorld(808)


@pytest.fixture(scope="module")
def queries():
    corpus = build_corpus()
    return {
        "generic": corpus.get("School"),
        "brand": corpus.get("Starbucks"),
        "controversial": corpus.get("Gay Marriage"),
        "politician": corpus.get("Barack Obama"),
        "common": corpus.get("Bill Johnson"),
    }


def _ctx(location, *, day=0, dc="dc00", bucket=0, nonce=1):
    return RankingContext(
        location=location, day=day, datacenter=dc, bucket=bucket, nonce=nonce
    )


def _ranker(world, **overrides):
    return Ranker(world, EngineCalibration().with_overrides(**overrides), seed=808)


class TestStaticScoring:
    def test_poi_scores_decay_with_distance(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool = ranker._static_pool(queries["generic"], snapped, state, metro)
        pois = [
            (doc, score)
            for doc, score in pool
            if doc.kind.value == "local-business"
        ]
        assert pois
        for doc, score in pois:
            # The static score is base minus the distance penalty.
            assert score <= doc.base_score

    def test_pool_is_memoised(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        a = ranker._static_pool(queries["generic"], snapped, state, metro)
        b = ranker._static_pool(queries["generic"], snapped, state, metro)
        assert a is b

    def test_ambiguity_docs_decay_slowly(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        query = queries["common"]
        snapped = ranker._snap_grid.snap(CLEVELAND)
        state = ranker._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool = ranker._static_pool(query, snapped, state, metro)
        entities = [
            (doc, score)
            for doc, score in pool
            if doc.anchor is not None and doc.kind.value == "organic"
        ]
        assert entities
        for doc, score in entities:
            distance = __import__("repro.geo.coords", fromlist=["haversine_miles"]).haversine_miles(
                snapped, doc.anchor
            )
            expected = doc.base_score - 0.0035 * distance
            assert score == pytest.approx(expected)

    def test_index_bias_shifts_static_scores(self, ranker_world, queries):
        plain = _ranker(ranker_world)
        biased = _ranker(ranker_world, index_bias=1.0)
        snapped = plain._snap_grid.snap(CLEVELAND)
        state = plain._nearest_state(snapped)
        metro = ranker_world.metro_grid.cell_of(snapped)
        pool_a = dict(
            (doc.identity, score)
            for doc, score in plain._static_pool(queries["controversial"], snapped, state, metro)
        )
        pool_b = dict(
            (doc.identity, score)
            for doc, score in biased._static_pool(queries["controversial"], snapped, state, metro)
        )
        diffs = [abs(pool_a[url] - pool_b[url]) for url in pool_a]
        assert max(diffs) > 0.1

    def test_location_keying_changes_national_doc_scores(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        query = queries["generic"]
        snapped_a = ranker._snap_grid.snap(CLEVELAND)
        snapped_b = ranker._snap_grid.snap(AUSTIN)
        pool_a = {
            doc.identity: score
            for doc, score in ranker._static_pool(
                query, snapped_a, ranker._nearest_state(snapped_a),
                ranker_world.metro_grid.cell_of(snapped_a),
            )
            if doc.scope.value == "national"
        }
        pool_b = {
            doc.identity: score
            for doc, score in ranker._static_pool(
                query, snapped_b, ranker._nearest_state(snapped_b),
                ranker_world.metro_grid.cell_of(snapped_b),
            )
            if doc.scope.value == "national"
        }
        shared = set(pool_a) & set(pool_b)
        assert shared
        assert any(abs(pool_a[url] - pool_b[url]) > 0.05 for url in shared)


class TestDynamicScoring:
    def test_bucket_changes_jitter(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        page_a = ranker.build_page(queries["generic"], _ctx(CLEVELAND, bucket=1, nonce=1))
        pages_differ = False
        for bucket in range(2, 30):
            page_b = ranker.build_page(
                queries["generic"], _ctx(CLEVELAND, bucket=bucket, nonce=1)
            )
            if page_a.links() != page_b.links():
                pages_differ = True
                break
        assert pages_differ

    def test_datacenter_changes_scores(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        differs = False
        for nonce in range(5):
            a = ranker.build_page(queries["generic"], _ctx(CLEVELAND, dc="dc00", nonce=nonce))
            b = ranker.build_page(queries["generic"], _ctx(CLEVELAND, dc="dc01", nonce=nonce))
            if a.links() != b.links():
                differs = True
        assert differs

    def test_zero_noise_calibration_is_deterministic(self, ranker_world, queries):
        ranker = _ranker(
            ranker_world,
            ab_jitter_local=0.0,
            ab_jitter_national=0.0,
            datacenter_skew=0.0,
            maps_prob_generic=1.0,
        )
        pages = {
            tuple(
                ranker.build_page(
                    queries["generic"], _ctx(CLEVELAND, bucket=b, nonce=b, dc=f"dc0{b % 3}")
                ).links()
            )
            for b in range(6)
        }
        assert len(pages) == 1


class TestCardAssembly:
    def test_maps_insert_rank(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0, maps_insert_rank=1)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        assert page.cards[1].card_type is CardType.MAPS

    def test_maps_card_size(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0, maps_card_size=5)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        maps_card = next(c for c in page.cards if c.card_type is CardType.MAPS)
        assert len(maps_card.documents) == 5

    def test_organic_slots_respected(self, ranker_world, queries):
        ranker = _ranker(ranker_world, organic_slots=9, maps_prob_generic=0.0)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        assert page.card_count(CardType.ORGANIC) == 9

    def test_news_threshold_zero_gives_all_controversial_news(self, ranker_world, queries):
        ranker = _ranker(ranker_world, news_threshold_controversial=0.0)
        page = ranker.build_page(queries["controversial"], _ctx(CLEVELAND))
        assert page.card_count(CardType.NEWS) == 1

    def test_news_threshold_one_gives_none(self, ranker_world, queries):
        ranker = _ranker(ranker_world, news_threshold_controversial=1.0)
        page = ranker.build_page(queries["controversial"], _ctx(CLEVELAND))
        assert page.card_count(CardType.NEWS) == 0

    def test_organic_results_sorted_by_total_score(self, ranker_world, queries):
        # With zero dynamic noise, organic order must equal static-score
        # order.
        ranker = _ranker(
            ranker_world,
            ab_jitter_local=0.0,
            ab_jitter_national=0.0,
            datacenter_skew=0.0,
            maps_prob_generic=0.0,
        )
        query = queries["generic"]
        ctx = _ctx(CLEVELAND)
        page = ranker.build_page(query, ctx)
        snapped = ranker._snap_grid.snap(CLEVELAND)
        pool = ranker._static_pool(
            query, snapped, ranker._nearest_state(snapped),
            ranker_world.metro_grid.cell_of(snapped),
        )
        scores = {doc.identity: score for doc, score in pool}
        organic_urls = [
            str(card.documents[0].url)
            for card in page.cards
            if card.card_type is CardType.ORGANIC
        ]
        organic_scores = [scores[url] for url in organic_urls]
        assert organic_scores == sorted(organic_scores, reverse=True)


def _context_grid():
    """Mixed cells, buckets, datacenters, nonces, and pages — the shapes
    one lock-step round actually produces."""
    contexts = []
    nonce = 1
    for location in (CLEVELAND, AUSTIN):
        for bucket in (0, 1, 2):
            for datacenter in ("dc00", "dc01"):
                contexts.append(
                    RankingContext(
                        location=location,
                        day=0,
                        datacenter=datacenter,
                        bucket=bucket,
                        nonce=nonce,
                        page=nonce % 2,
                    )
                )
                nonce += 1
    return contexts


class TestBatchParity:
    """build_pages_batch and the build_page fast path must be invisible:
    byte-for-byte what per-request reference calls produce."""

    @pytest.mark.parametrize("name", ["generic", "brand", "controversial"])
    def test_batch_matches_per_request_reference(
        self, ranker_world, queries, name
    ):
        query = queries[name]
        contexts = _context_grid()
        reference = _ranker(ranker_world)
        reference.fast_path = False
        expected = [
            render_page(reference.build_page(query, ctx)) for ctx in contexts
        ]
        batch = _ranker(ranker_world)
        pages = batch.build_pages_batch(query, contexts)
        assert [render_page(page) for page in pages] == expected

    def test_fast_path_toggle_is_byte_invisible(self, ranker_world, queries):
        query = queries["generic"]
        contexts = _context_grid()
        slow = _ranker(ranker_world)
        slow.fast_path = False
        fast = _ranker(ranker_world)
        assert fast.fast_path  # the default
        for ctx in contexts:
            assert render_page(fast.build_page(query, ctx)) == render_page(
                slow.build_page(query, ctx)
            )

    def test_batch_session_contexts_take_reference_path(
        self, ranker_world, queries
    ):
        # A session-carrying request mutates the pool (history blending,
        # session boost), so the batch path must route it through the
        # reference implementation — mixed in with fast-path siblings.
        query = queries["generic"]
        plain = RankingContext(
            location=CLEVELAND, day=0, datacenter="dc00", bucket=0, nonce=1
        )
        session = RankingContext(
            location=CLEVELAND,
            day=0,
            datacenter="dc00",
            bucket=0,
            nonce=2,
            session_slugs=("school",),
        )
        reference = _ranker(ranker_world)
        reference.fast_path = False
        expected = [
            render_page(reference.build_page(query, ctx))
            for ctx in (plain, session, plain)
        ]
        batch = _ranker(ranker_world)
        pages = batch.build_pages_batch(query, (plain, session, plain))
        assert [render_page(page) for page in pages] == expected

    def test_batch_preserves_input_order(self, ranker_world, queries):
        contexts = _context_grid()
        pages = _ranker(ranker_world).build_pages_batch(
            queries["generic"], contexts
        )
        assert [page.reported_location for page in pages] == [
            ctx.location for ctx in contexts
        ]
        assert [page.datacenter for page in pages] == [
            ctx.datacenter for ctx in contexts
        ]


class TestRankerCaches:
    def test_cache_info_tracks_memo_growth_and_hits(self, ranker_world, queries):
        ranker = _ranker(ranker_world)
        query = queries["generic"]
        ctx = _ctx(CLEVELAND)
        ranker.build_page(query, ctx)
        info = ranker.cache_info()
        assert info["static_pools"] >= 1
        assert info["bundles"] >= 1
        assert info["jitter_vecs"] >= 1
        assert info["misses"] > 0
        ranker.build_page(query, ctx)
        again = ranker.cache_info()
        assert again["hits"] > info["hits"]
        assert again["bundles"] == info["bundles"]

    def test_clear_caches_resets_without_changing_output(
        self, ranker_world, queries
    ):
        ranker = _ranker(ranker_world)
        query = queries["generic"]
        ctx = _ctx(CLEVELAND)
        before = render_page(ranker.build_page(query, ctx))
        ranker.clear_caches()
        info = ranker.cache_info()
        assert all(value == 0 for value in info.values())
        assert render_page(ranker.build_page(query, ctx)) == before

    def test_memo_caps_bound_growth_without_changing_output(
        self, ranker_world, queries
    ):
        query = queries["generic"]
        unbounded = _ranker(ranker_world)
        capped = _ranker(ranker_world)
        capped.UNIT_MEMO_CAP = 0  # instance override: clear on every overflow
        capped.VEC_MEMO_CAP = 0
        for bucket in range(8):
            ctx = _ctx(CLEVELAND, bucket=bucket, nonce=bucket + 1)
            assert render_page(capped.build_page(query, ctx)) == render_page(
                unbounded.build_page(query, ctx)
            )
            assert len(capped._jitter_vecs) <= 1
            assert len(capped._skew_vecs) <= 1
        assert len(unbounded._jitter_vecs) == 8

    def test_prewarm_fills_only_pure_memos(self, ranker_world, queries):
        query = queries["generic"]
        cold = _ranker(ranker_world)
        expected = render_page(cold.build_page(query, _ctx(CLEVELAND)))
        warm = _ranker(ranker_world)
        warm.prewarm(query, [CLEVELAND], ["dc00"])
        info = warm.cache_info()
        assert info["bundles"] == 1
        assert info["skew_vecs"] == 1
        assert info["suggestions"] == 1
        assert render_page(warm.build_page(query, _ctx(CLEVELAND))) == expected

    def test_prewarm_maps_builds_cards_for_local_queries_only(
        self, ranker_world, queries
    ):
        local = _ranker(ranker_world)
        snapped = local._snap_grid.snap(CLEVELAND)
        local.prewarm_maps(queries["brand"], [snapped])
        assert (queries["brand"].key, snapped) in local._maps_cache
        national = _ranker(ranker_world)
        national.prewarm_maps(queries["controversial"], [snapped])
        assert not national._maps_cache


class TestRenderer:
    def test_rank_attributes_sequential(self, ranker_world, queries):
        ranker = _ranker(ranker_world, maps_prob_generic=1.0)
        page = ranker.build_page(queries["generic"], _ctx(CLEVELAND))
        html = render_page(page)
        for index in range(1, len(page.cards) + 1):
            assert f'data-rank="{index}"' in html

    def test_titles_escaped(self, ranker_world):
        corpus = build_corpus()
        query = corpus.get("Wendy's")
        ranker = _ranker(ranker_world)
        html = render_page(ranker.build_page(query, _ctx(CLEVELAND)))
        assert "Wendy&#x27;s" in html or "Wendy's" in html
        assert "<script" not in html
