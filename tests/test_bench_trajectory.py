"""The bench perf trajectories and CI regression gates.

These are pure-mechanics tests over synthetic reports — the actual
sweeps are exercised by ``benchmarks/``; here we pin the shared
history format (append, bound, legacy migration, stamping) for both
the crawl and serve benches, plus each bench's throughput gate.
"""

import json
import re

from repro.parallel.bench import (
    BenchCell,
    BenchReport,
    load_trajectory,
    regression_message,
)
from repro.serve.bench import (
    ServeBenchCell,
    ServeBenchReport,
    serve_regression_message,
)


def _cell(workers: int = 1, rps: float = 100.0) -> BenchCell:
    return BenchCell(
        workers=workers,
        wall_seconds=1.0,
        wall_seconds_median=1.1,
        repeats=3,
        pages=60,
        requests=100,
        failures=0,
        requests_per_second=rps,
        speedup_vs_workers_1=1.0,
        dataset_sha256="d" * 64,
        byte_identical_to_sequential=True,
    )


def _report(rps: float = 100.0, **overrides) -> BenchReport:
    fields = dict(
        benchmark="crawl",
        scale="smoke",
        seed=7,
        route_via_gateway=False,
        queries=4,
        locations=9,
        treatments=18,
        rounds=4,
        cpus=1,
        start_method="fork",
        repeats=3,
    )
    fields.update(overrides)
    report = BenchReport(**fields)
    report.cells.append(_cell(rps=rps))
    return report


class TestTrajectory:
    def test_write_appends_and_stamps_entries(self, tmp_path):
        path = tmp_path / "BENCH_crawl.json"
        _report(rps=100.0).write(path)
        _report(rps=120.0).write(path)
        raw = json.loads(path.read_text())
        assert raw["format"] == "trajectory-v1"
        entries = raw["entries"]
        assert len(entries) == 2
        assert entries[0]["cells"][0]["requests_per_second"] == 100.0
        assert entries[1]["cells"][0]["requests_per_second"] == 120.0
        for entry in entries:
            assert re.fullmatch(
                r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", entry["timestamp"]
            )
            # In a git checkout the sha is stamped; outside one it is null.
            assert "git_sha" in entry

    def test_write_keeps_last_n(self, tmp_path):
        path = tmp_path / "BENCH_crawl.json"
        for index in range(5):
            _report(rps=float(index)).write(path, keep=3)
        entries = load_trajectory(path)
        assert [e["cells"][0]["requests_per_second"] for e in entries] == [
            2.0,
            3.0,
            4.0,
        ]

    def test_legacy_snapshot_becomes_oldest_entry(self, tmp_path):
        path = tmp_path / "BENCH_crawl.json"
        legacy = _report(rps=50.0).to_dict()  # pre-trajectory: bare report
        path.write_text(json.dumps(legacy))
        assert load_trajectory(path) == [legacy]
        _report(rps=80.0).write(path)
        entries = load_trajectory(path)
        assert len(entries) == 2
        assert entries[0]["cells"][0]["requests_per_second"] == 50.0
        assert entries[1]["cells"][0]["requests_per_second"] == 80.0

    def test_load_trajectory_tolerates_missing_and_foreign_content(
        self, tmp_path
    ):
        assert load_trajectory(tmp_path / "absent.json") == []
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert load_trajectory(garbage) == []
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps([1, 2, 3]))
        assert load_trajectory(foreign) == []


class TestRegressionGate:
    def _history(self, rps: float = 100.0, **overrides) -> list:
        entry = _report(rps=rps, **overrides).to_dict()
        entry["git_sha"] = "abc1234"
        entry["timestamp"] = "2026-08-08T00:00:00Z"
        return [entry]

    def test_fires_past_threshold(self):
        message = regression_message(
            _report(rps=70.0), self._history(rps=100.0), threshold_pct=20.0
        )
        assert message is not None
        assert "PERF REGRESSION" in message
        assert "30.0% below" in message
        assert "abc1234" in message

    def test_passes_within_threshold(self):
        assert (
            regression_message(
                _report(rps=85.0), self._history(rps=100.0), threshold_pct=20.0
            )
            is None
        )

    def test_passes_on_improvement(self):
        assert (
            regression_message(
                _report(rps=150.0), self._history(rps=100.0), threshold_pct=20.0
            )
            is None
        )

    def test_no_comparable_baseline_passes(self):
        report = _report(rps=10.0)
        assert regression_message(report, [], threshold_pct=20.0) is None
        # Same file, different config axes: not comparable.
        for overrides in (
            {"scale": "standard"},
            {"route_via_gateway": True},
            {"seed": 999},
        ):
            history = self._history(rps=100.0, **overrides)
            assert (
                regression_message(report, history, threshold_pct=20.0) is None
            )

    def test_compares_against_latest_comparable_entry(self):
        history = self._history(rps=100.0) + self._history(rps=10.0)
        # Latest entry (10 rps) is the baseline: 8 rps is within 20%.
        assert (
            regression_message(
                _report(rps=8.5), history, threshold_pct=20.0
            )
            is None
        )


def _serve_cell(gateways: int = 1, rps: float = 500.0) -> ServeBenchCell:
    return ServeBenchCell(
        gateways=gateways,
        replication=min(2, gateways),
        requests=400,
        wall_seconds=1.0,
        requests_per_second=rps,
        ok=395,
        degraded=3,
        rate_limited=2,
        overloaded=0,
        cache_hit_rate=0.05,
        rerouted=0,
        hot_promotions=0,
    )


def _serve_report(rps: float = 500.0, **overrides) -> ServeBenchReport:
    fields = dict(
        seed=7,
        clients=50_000,
        requests=400,
        rate_per_minute=40.0,
        routing="round-robin",
        cache_size=4096,
        replication=2,
    )
    fields.update(overrides)
    report = ServeBenchReport(**fields)
    report.cells.append(_serve_cell(rps=rps))
    report.cells.append(_serve_cell(gateways=2, rps=rps * 2))
    return report


class TestServeTrajectory:
    def test_write_shares_the_trajectory_mechanics(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        _serve_report(rps=500.0).write(path)
        _serve_report(rps=520.0).write(path, keep=1)
        raw = json.loads(path.read_text())
        assert raw["format"] == "trajectory-v1"
        assert raw["benchmark"] == "serve"
        entries = raw["entries"]
        assert len(entries) == 1  # keep=1 bounded the history
        assert entries[0]["cells"][0]["requests_per_second"] == 520.0
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", entries[0]["timestamp"]
        )
        assert "git_sha" in entries[0]

    def test_degraded_is_reported_apart_from_ok(self):
        rendered = _serve_report().render()
        assert "degr" in rendered
        cell = _serve_report().cells[0]
        assert cell.ok + cell.degraded + cell.rate_limited + cell.overloaded == 400


class TestServeRegressionGate:
    def _history(self, rps: float = 500.0, **overrides) -> list:
        entry = _serve_report(rps=rps, **overrides).to_dict()
        entry["git_sha"] = "abc1234"
        entry["timestamp"] = "2026-08-08T00:00:00Z"
        return [entry]

    def test_fires_on_single_gateway_regression(self):
        message = serve_regression_message(
            _serve_report(rps=300.0),
            self._history(rps=500.0),
            threshold_pct=20.0,
        )
        assert message is not None
        assert "PERF REGRESSION" in message
        assert "40.0% below" in message

    def test_passes_within_threshold_and_on_improvement(self):
        history = self._history(rps=500.0)
        for rps in (450.0, 700.0):
            assert (
                serve_regression_message(
                    _serve_report(rps=rps), history, threshold_pct=20.0
                )
                is None
            )

    def test_different_load_shape_is_not_comparable(self):
        report = _serve_report(rps=100.0)
        for overrides in (
            {"clients": 999},
            {"routing": "geo-affinity"},
            {"replication": 1},
            {"cache_size": 64},
        ):
            history = self._history(rps=500.0, **overrides)
            assert (
                serve_regression_message(
                    report, history, threshold_pct=20.0
                )
                is None
            )
