"""Tests for engine components: calibration, sessions, rate limiting,
datacenters, classification, request model."""

import pytest

from repro.engine.calibration import EngineCalibration
from repro.engine.classify import QueryClassifier
from repro.engine.datacenters import SEARCH_HOSTNAME, DatacenterCluster
from repro.engine.ratelimit import RateLimiter
from repro.engine.request import ResponseStatus, SearchRequest
from repro.engine.sessions import SessionStore
from repro.geo.coords import LatLon
from repro.net.dns import DNSResolver
from repro.net.ip import IPv4Address
from repro.queries.model import QueryCategory


class TestCalibration:
    def test_defaults_valid(self):
        EngineCalibration()

    def test_with_overrides(self):
        cal = EngineCalibration().with_overrides(maps_prob_generic=0.5)
        assert cal.maps_prob_generic == 0.5
        assert cal.organic_slots == EngineCalibration().organic_slots

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            EngineCalibration(maps_prob_generic=1.5)

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError):
            EngineCalibration(organic_slots=0)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            EngineCalibration(poi_radius_miles=-1)


class TestSearchRequest:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            SearchRequest(
                query_text=" ",
                client_ip=IPv4Address.parse("10.0.0.1"),
                frontend_ip=IPv4Address.parse("198.51.100.1"),
                timestamp_minutes=0.0,
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SearchRequest(
                query_text="x",
                client_ip=IPv4Address.parse("10.0.0.1"),
                frontend_ip=IPv4Address.parse("198.51.100.1"),
                timestamp_minutes=-1.0,
            )

    def test_day_derived_from_timestamp(self):
        request = SearchRequest(
            query_text="x",
            client_ip=IPv4Address.parse("10.0.0.1"),
            frontend_ip=IPv4Address.parse("198.51.100.1"),
            timestamp_minutes=3 * 24 * 60 + 10.0,
        )
        assert request.day == 3


class TestDatacenterCluster:
    def test_default_size(self):
        assert len(DatacenterCluster()) == 6

    def test_unique_frontend_ips(self):
        cluster = DatacenterCluster()
        assert len({dc.frontend_ip for dc in cluster}) == len(cluster)

    def test_by_ip(self):
        cluster = DatacenterCluster()
        dc = cluster[2]
        assert cluster.by_ip(dc.frontend_ip) is dc

    def test_by_unknown_ip_raises(self):
        with pytest.raises(KeyError):
            DatacenterCluster().by_ip(IPv4Address.parse("10.0.0.1"))

    def test_dns_record_covers_all_frontends(self):
        cluster = DatacenterCluster()
        record = cluster.dns_record()
        assert record.name == SEARCH_HOSTNAME
        assert len(record.addresses) == len(cluster)

    def test_install_into_resolver(self):
        cluster = DatacenterCluster()
        resolver = DNSResolver()
        cluster.install_into(resolver)
        ip = resolver.resolve(SEARCH_HOSTNAME, query_id=0)
        assert cluster.by_ip(ip) is not None

    def test_zero_datacenters_rejected(self):
        with pytest.raises(ValueError):
            DatacenterCluster(count=0)


class TestSessionStore:
    def test_recent_queries_within_window(self):
        store = SessionStore(window_minutes=10.0)
        store.record("c1", "Coffee", 100.0, None)
        assert store.recent_query_slugs("c1", 105.0) == ["coffee"]

    def test_queries_age_out(self):
        store = SessionStore(window_minutes=10.0)
        store.record("c1", "Coffee", 100.0, None)
        assert store.recent_query_slugs("c1", 111.0) == []

    def test_eleven_minute_wait_clears_window(self):
        # The paper waits 11 minutes between queries precisely so the
        # 10-minute window is empty.
        store = SessionStore(window_minutes=10.0)
        store.record("c1", "Coffee", 0.0, None)
        assert store.recent_query_slugs("c1", 11.0) == []

    def test_none_cookie_has_no_session(self):
        store = SessionStore()
        assert store.recent_query_slugs(None, 0.0) == []

    def test_remembered_location(self):
        store = SessionStore(window_minutes=10.0)
        loc = LatLon(41.0, -81.0)
        store.record("c1", "Coffee", 100.0, loc)
        assert store.remembered_location("c1", 105.0) == loc

    def test_location_memory_expires(self):
        store = SessionStore(window_minutes=10.0)
        store.record("c1", "Coffee", 100.0, LatLon(41.0, -81.0))
        assert store.remembered_location("c1", 100.0 + 31.0) is None

    def test_clear_forgets_everything(self):
        store = SessionStore()
        store.record("c1", "Coffee", 100.0, LatLon(41.0, -81.0))
        store.clear("c1")
        assert store.recent_query_slugs("c1", 101.0) == []
        assert store.remembered_location("c1", 101.0) is None

    def test_sessions_isolated_by_cookie(self):
        store = SessionStore()
        store.record("c1", "Coffee", 100.0, None)
        assert store.recent_query_slugs("c2", 101.0) == []


class TestRateLimiter:
    def test_allows_under_budget(self):
        limiter = RateLimiter(max_per_minute=5)
        ip = IPv4Address.parse("10.0.0.1")
        assert all(limiter.allow(ip, 0.0 + i * 0.01) for i in range(5))

    def test_blocks_over_budget(self):
        limiter = RateLimiter(max_per_minute=5)
        ip = IPv4Address.parse("10.0.0.1")
        for i in range(5):
            limiter.allow(ip, i * 0.01)
        assert not limiter.allow(ip, 0.06)

    def test_window_slides(self):
        limiter = RateLimiter(max_per_minute=5)
        ip = IPv4Address.parse("10.0.0.1")
        for i in range(5):
            limiter.allow(ip, i * 0.01)
        assert limiter.allow(ip, 2.0)  # old requests aged out

    def test_ips_independent(self):
        limiter = RateLimiter(max_per_minute=1)
        assert limiter.allow(IPv4Address.parse("10.0.0.1"), 0.0)
        assert limiter.allow(IPv4Address.parse("10.0.0.2"), 0.0)

    def test_rejected_requests_still_count(self):
        limiter = RateLimiter(max_per_minute=1)
        ip = IPv4Address.parse("10.0.0.1")
        limiter.allow(ip, 0.0)
        assert not limiter.allow(ip, 0.5)
        # Hammering keeps the window full.
        assert not limiter.allow(ip, 1.2)

    def test_outstanding_count(self):
        limiter = RateLimiter(max_per_minute=10)
        ip = IPv4Address.parse("10.0.0.1")
        limiter.allow(ip, 0.0)
        limiter.allow(ip, 0.1)
        assert limiter.outstanding(ip, 0.2) == 2
        assert limiter.outstanding(ip, 5.0) == 0

    def test_idle_ips_are_swept(self):
        # Many distinct client IPs (a gateway load test) must not
        # accumulate an empty window per IP forever.
        limiter = RateLimiter(max_per_minute=5, sweep_every=100)
        for i in range(5000):
            limiter.allow(IPv4Address(i + 1), float(i))
        assert limiter.tracked_ips() < 200

    def test_sweep_keeps_live_windows(self):
        limiter = RateLimiter(max_per_minute=5)
        busy = IPv4Address.parse("10.0.0.1")
        idle = IPv4Address.parse("10.0.0.2")
        limiter.allow(idle, 0.0)
        limiter.allow(busy, 10.0)
        assert limiter.sweep(10.5) == 1
        assert limiter.tracked_ips() == 1
        assert not all(limiter.allow(busy, 10.6) for _ in range(5))

    def test_reset_restores_pristine_state(self):
        limiter = RateLimiter(max_per_minute=1)
        ip = IPv4Address.parse("10.0.0.1")
        limiter.allow(ip, 0.0)
        assert not limiter.allow(ip, 0.1)
        limiter.reset()
        assert limiter.tracked_ips() == 0
        assert limiter.allow(ip, 0.2)

    def test_clone_makes_identical_decisions(self):
        limiter = RateLimiter(max_per_minute=3)
        ip = IPv4Address.parse("10.0.0.1")
        for i in range(2):
            limiter.allow(ip, i * 0.01)
        clone = limiter.clone_state()
        # Same snapshot, same verdicts from here on.
        assert [limiter.allow(ip, 0.1 + i * 0.01) for i in range(3)] == [
            clone.allow(ip, 0.1 + i * 0.01) for i in range(3)
        ]

    def test_clone_is_independent(self):
        limiter = RateLimiter(max_per_minute=2)
        ip = IPv4Address.parse("10.0.0.1")
        limiter.allow(ip, 0.0)
        clone = limiter.clone_state()
        clone.allow(ip, 0.1)
        clone.allow(ip, 0.2)
        # The clone's traffic never consumed the original's budget.
        assert limiter.allow(ip, 0.3)

    def test_restore_rewinds_to_snapshot(self):
        limiter = RateLimiter(max_per_minute=1)
        ip = IPv4Address.parse("10.0.0.1")
        pristine = limiter.clone_state()
        limiter.allow(ip, 0.0)
        assert not limiter.allow(ip, 0.1)
        limiter.restore(pristine)
        assert limiter.allow(ip, 0.2)


class TestQueryClassifier:
    def test_known_corpus_terms_resolve_exactly(self, corpus):
        classifier = QueryClassifier(corpus)
        query = classifier.classify("Starbucks")
        assert query.category is QueryCategory.LOCAL
        assert query.is_brand

    def test_known_politician(self, corpus):
        classifier = QueryClassifier(corpus)
        assert classifier.classify("Barack Obama").category is QueryCategory.POLITICIAN

    def test_unknown_local_vocabulary(self, corpus):
        classifier = QueryClassifier(corpus)
        assert classifier.classify("coffee").category is QueryCategory.LOCAL

    def test_unknown_person_shaped(self, corpus):
        classifier = QueryClassifier(corpus)
        query = classifier.classify("Jane Fakename")
        assert query.category is QueryCategory.POLITICIAN

    def test_unknown_issue_shaped(self, corpus):
        classifier = QueryClassifier(corpus)
        assert (
            classifier.classify("quantum gravity research").category
            is QueryCategory.CONTROVERSIAL
        )

    def test_empty_rejected(self, corpus):
        with pytest.raises(ValueError):
            QueryClassifier(corpus).classify("  ")

    def test_works_without_corpus(self):
        classifier = QueryClassifier(None)
        assert classifier.classify("school").category is QueryCategory.LOCAL


class TestResponseStatus:
    def test_codes(self):
        assert ResponseStatus.OK.value == 200
        assert ResponseStatus.RATE_LIMITED.value == 429
