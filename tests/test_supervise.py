"""Supervised parallel execution (repro.supervise).

The contract under test: killing, hanging, or erroring any worker at
any point of the crawl is *invisible* in the output — recovery
re-executes the lost shard from its last snapshot and the merged
dataset serialises to the same bytes as the sequential run — and when
a shard fails deterministically, the loss is structured and visible,
never silent.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.core.comparisons import per_location_coverage
from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.faults.plan import FaultPlan
from repro.parallel import WorkerFailure, run_parallel
from repro.queries.corpus import build_corpus
from repro.supervise import (
    KillSpec,
    SupervisorPolicy,
    run_supervised,
)

#: Fast stall detection for tests: tenths of a second, not minutes.
FAST_STALLS = SupervisorPolicy(
    stall_timeout_seconds=30.0, stall_grace_seconds=0.3, stall_rounds=1
)


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    # machine_count=5 < treatment count so browsers share crawl
    # machines — the coupling the machine-granular shard plan preserves.
    config = StudyConfig.small(
        _queries(), days=1, locations_per_granularity=2
    ).with_overrides(machine_count=5)
    return config.with_overrides(**overrides) if overrides else config


def _serialized(dataset) -> str:
    return "".join(json.dumps(record.to_dict()) + "\n" for record in dataset)


@pytest.fixture(scope="module")
def baseline():
    study = Study(_config())
    return _serialized(study.run()), study


@pytest.fixture(scope="module")
def gateway_baseline():
    study = Study(_config(route_via_gateway=True))
    return _serialized(study.run()), study


def _run(config, *, workers, **kwargs):
    study = Study(config)
    dataset = run_supervised(study, workers=workers, **kwargs)
    return _serialized(dataset), study


class TestValidation:
    def test_kill_spec_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="kill mode"):
            KillSpec(shard=0, ordinal=0, mode="maim")

    def test_policy_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(quarantine_after=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(stall_rounds=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_respawns=-1)

    def test_supervise_knobs_require_supervise(self):
        with pytest.raises(ValueError, match="supervise"):
            run_parallel(Study(_config()), workers=2, kill_specs=(
                KillSpec(shard=0, ordinal=0),
            ))

    def test_supervise_refuses_checkpoint(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            run_parallel(
                Study(_config()),
                workers=2,
                supervise=True,
                checkpoint=str(tmp_path / "journal.jsonl"),
            )


class TestCleanSupervised:
    def test_clean_run_is_byte_identical_and_heartbeats(self, baseline):
        expected, seq = baseline
        got, study = _run(_config(), workers=2)
        assert got == expected
        report = study.supervisor
        assert report.clean
        # One heartbeat per (shard, round): 2 shards x 3 rounds.
        assert report.stats.heartbeats == 6
        assert report.stats.rounds_received == 6
        assert study.stats == seq.stats

    def test_run_api_supervise_flag(self, baseline):
        expected, _ = baseline
        study = Study(_config())
        dataset = study.run(workers=2, supervise=True)
        assert _serialized(dataset) == expected
        assert study.supervisor is not None


class TestCrashRecovery:
    @pytest.mark.parametrize("ordinal", [0, 1, 2])
    def test_boundary_kill_any_round_keeps_parity(self, baseline, ordinal):
        expected, seq = baseline
        got, study = _run(
            _config(),
            workers=2,
            kill_specs=(KillSpec(shard=0, ordinal=ordinal),),
        )
        assert got == expected, f"kill at round boundary {ordinal} drifted"
        stats = study.supervisor.stats
        assert stats.crashes_detected == 1
        assert stats.recoveries == 1
        assert study.stats == seq.stats
        assert study.failures == seq.failures

    def test_midround_kill_keeps_parity(self, baseline):
        expected, _ = baseline
        got, study = _run(
            _config(),
            workers=2,
            kill_specs=(KillSpec(shard=1, ordinal=1, request=2),),
        )
        assert got == expected
        assert study.supervisor.stats.crashes_detected == 1

    def test_four_workers_two_kills(self, baseline):
        expected, _ = baseline
        got, study = _run(
            _config(),
            workers=4,
            kill_specs=(
                KillSpec(shard=0, ordinal=0),
                KillSpec(shard=2, ordinal=1, request=1),
            ),
        )
        assert got == expected
        assert study.supervisor.stats.crashes_detected == 2

    def test_gateway_routed_crash_keeps_parity(self, gateway_baseline):
        expected, seq = gateway_baseline
        got, study = _run(
            _config(route_via_gateway=True),
            workers=2,
            kill_specs=(KillSpec(shard=0, ordinal=1),),
        )
        assert got == expected
        assert study.supervisor.stats.crashes_detected == 1
        assert study.stats == seq.stats

    def test_reassignment_when_respawn_budget_exhausted(self, baseline):
        expected, _ = baseline
        got, study = _run(
            _config(),
            workers=2,
            policy=SupervisorPolicy(max_respawns=0),
            kill_specs=(KillSpec(shard=0, ordinal=0),),
        )
        assert got == expected
        stats = study.supervisor.stats
        assert stats.respawns == 0
        assert stats.reassignments == 1
        assert stats.workers_lost == 1


class TestStallRecovery:
    def test_virtual_deadline_detects_hang(self, baseline):
        expected, _ = baseline
        got, study = _run(
            _config(),
            workers=2,
            policy=FAST_STALLS,
            kill_specs=(KillSpec(shard=0, ordinal=1, mode="stall"),),
        )
        assert got == expected
        stats = study.supervisor.stats
        assert stats.stalls_detected == 1
        assert stats.crashes_detected == 0

    def test_wall_clock_watchdog_backstops_single_worker(self, baseline):
        # workers=1: no leader to define a virtual deadline, so only
        # the wall-clock watchdog can notice the hang.
        expected, _ = baseline
        got, study = _run(
            _config(),
            workers=1,
            policy=SupervisorPolicy(stall_timeout_seconds=1.0),
            kill_specs=(KillSpec(shard=0, ordinal=1, mode="stall"),),
        )
        assert got == expected
        assert study.supervisor.stats.stalls_detected == 1


class TestQuarantine:
    def test_deterministic_failure_is_structured_loss(self):
        config = _config()
        study = Study(config)
        dataset = run_supervised(
            study,
            workers=2,
            policy=SupervisorPolicy(quarantine_after=2),
            # generation=None: every incarnation dies at the same
            # request — a deterministic failure no respawn can clear.
            kill_specs=(KillSpec(shard=0, ordinal=1, request=1, generation=None),),
        )
        report = study.supervisor
        assert report.stats.quarantined_shards == 1
        assert not report.clean
        # Shard 0 delivered round 0 (7 treatments), then lost rounds
        # 1-2: 14 synthesized failures, zero silent loss.
        expected_cells = study.round_count() * len(study.treatments)
        assert len(dataset) + len(study.failures) == expected_cells
        assert report.stats.quarantined_failures == len(study.failures) == 14
        assert {f.kind for f in study.failures} == {"shard-quarantined"}
        coverage = per_location_coverage(dataset, study.failures)
        lost = {
            name: slot.lost_by_kind
            for name, slot in coverage.items()
            if slot.lost
        }
        assert lost, "quarantine must be visible in per-location coverage"
        for by_kind in lost.values():
            assert by_kind == {"shard-quarantined": by_kind["shard-quarantined"]}


class TestPlanDrivenChaos:
    def test_worker_crash_faults_recover_with_parity(self):
        # Same study config as the baseline but with worker-crash
        # faults armed: sequential execution ignores them (there is no
        # worker to kill), so the sequential run still defines truth.
        # The per-request rate compounds across a round (~7 draws), so
        # keep it low and the quarantine threshold high — this test is
        # about recovery, not deterministic-failure classification.
        config = _config(
            fault_plan=FaultPlan(seed=5, worker_crash_rate=0.06)
        )
        seq = Study(config)
        expected = _serialized(seq.run())
        policy = dataclasses.replace(FAST_STALLS, quarantine_after=10)
        got, study = _run(config, workers=2, policy=policy)
        assert got == expected
        stats = study.supervisor.stats
        assert stats.crashes_detected >= 1, "0.15 crash rate drew no kills"
        assert stats.quarantined_shards == 0
        assert study.stats == seq.stats

    def test_named_plan_exists(self):
        plan = FaultPlan.named("unstable-workers", seed=1)
        assert plan.has_worker_faults
        assert not plan.is_zero


class TestUnsupervisedFailureIsStructured:
    def test_dead_worker_raises_worker_failure(self, monkeypatch):
        # Without supervision a worker death must still surface as a
        # structured error, not a deadlocked parent (fork start method
        # propagates the patch into workers).
        original = Study.run_shard

        def dying(self, indices, **kwargs):
            if 0 in indices:
                os._exit(9)
            return original(self, indices, **kwargs)

        monkeypatch.setattr(Study, "run_shard", dying)
        with pytest.raises(WorkerFailure) as info:
            run_parallel(Study(_config()), workers=2, start_method="fork")
        assert info.value.exit_code == 9
        assert info.value.worker_id == 0
        assert "supervise=True" in str(info.value)


class TestObservability:
    def test_registry_exports_supervisor_counters(self):
        got, study = _run(
            _config(),
            workers=2,
            kill_specs=(KillSpec(shard=0, ordinal=0),),
        )
        snapshot = study.metrics_registry().snapshot()
        metrics = snapshot["metrics"]
        assert metrics["supervisor_crashes_detected_total"]["value"] == 1
        assert metrics["supervisor_heartbeats_total"]["value"] >= 6
        assert metrics["supervisor_quarantined_shards_total"]["value"] == 0

    def test_ledger_round_trips_to_dict(self):
        got, study = _run(
            _config(),
            workers=2,
            kill_specs=(KillSpec(shard=1, ordinal=2),),
        )
        payload = study.supervisor.to_dict()
        assert payload["workers"] == 2
        assert payload["stats"]["crashes_detected"] == 1
        kinds = [event["kind"] for event in payload["events"]]
        assert "crash-detected" in kinds
        rendered = study.supervisor.render()
        assert "crash-detected" in rendered
        assert "supervision ledger" in rendered
