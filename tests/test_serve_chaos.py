"""Serve-chaos accounting: nothing vanishes, nothing double-counts.

The invariant under test is the fleet's outcome partition —

    served fresh + served stale + shed + failed == offered

— across fleet sizes, replication factors, and fault plans, plus the
determinism contract: one configuration yields one ledger, byte for
byte, however the faults landed.
"""

from __future__ import annotations

import pytest

from repro.engine.datacenters import DatacenterCluster
from repro.faults.plan import NAMED_PLANS, FaultPlan
from repro.queries.corpus import build_corpus
from repro.serve import (
    BrownoutPolicy,
    LazyClientPopulation,
    LoadGenerator,
    ServeChaos,
    build_fleet,
)
from repro.web.world import WebWorld

REQUESTS = 300


@pytest.fixture(scope="module")
def world():
    return WebWorld(21)


def _harness(world, *, gateways, replication, plan, brownout=None, seed=21):
    cluster = DatacenterCluster()
    corpus = build_corpus()
    population = LazyClientPopulation(seed, 100_000, cluster)
    fleet = build_fleet(
        world,
        cluster,
        population.geoip_view(),
        count=gateways,
        corpus=corpus,
        seed=seed,
        cache_size=512,
        replication=replication,
        plan=plan,
        brownout=brownout,
    )
    loadgen = LoadGenerator(
        list(corpus), population, seed, rate_per_minute=40.0
    )
    return ServeChaos(fleet, loadgen)


class TestAccounting:
    @pytest.mark.parametrize("gateways,replication", [(1, 1), (2, 2), (3, 2)])
    def test_every_request_accounted_under_chaos(
        self, world, gateways, replication
    ):
        plan = FaultPlan.named("serve-chaos", seed=11)
        harness = _harness(
            world, gateways=gateways, replication=replication, plan=plan
        )
        report = harness.run(REQUESTS)
        assert report.offered == REQUESTS
        assert report.unaccounted() == 0
        assert sum(report.faults_injected.values()) > 0
        assert sum(report.shard_requests.values()) == REQUESTS

    def test_accounting_holds_with_brownout_active(self, world):
        plan = FaultPlan.named("serve-chaos", seed=11)
        harness = _harness(
            world,
            gateways=3,
            replication=2,
            plan=plan,
            brownout=BrownoutPolicy(min_window_requests=10),
        )
        report = harness.run(REQUESTS)
        assert report.unaccounted() == 0

    def test_no_faults_means_no_degradation(self, world):
        harness = _harness(world, gateways=3, replication=2, plan=None)
        report = harness.run(REQUESTS)
        assert report.unaccounted() == 0
        assert report.faults_injected == {}
        assert report.served_fresh == REQUESTS


class TestDeterminism:
    def test_identical_configs_produce_identical_ledgers(self, world):
        plan = FaultPlan.named("serve-chaos", seed=11)
        ledgers = []
        for _ in range(2):
            harness = _harness(world, gateways=3, replication=2, plan=plan)
            raw = harness.run(REQUESTS).to_dict()
            raw.pop("wall_seconds")
            ledgers.append(raw)
        assert ledgers[0] == ledgers[1]

    def test_fault_schedule_keys_on_nonce_not_fleet_size(self, world):
        """The same offered stream draws the same fault kinds whether
        the fleet has two shards or three — schedules are a function of
        (plan seed, nonce), never of shard interleaving."""
        plan = FaultPlan.named("serve-chaos", seed=11)
        by_size = {}
        for gateways in (2, 3):
            harness = _harness(
                world, gateways=gateways, replication=2, plan=plan
            )
            report = harness.run(REQUESTS)
            assert report.unaccounted() == 0
            by_size[gateways] = report.faults_injected
        assert by_size[2] == by_size[3]


class TestPlans:
    def test_serve_chaos_plan_is_registered(self):
        plan = NAMED_PLANS["serve-chaos"]
        assert plan.has_serve_faults
        assert 0.0 < plan.serve_fault_rate < 0.1
        assert not plan.is_zero

    def test_crawl_plans_carry_no_serve_faults(self):
        assert not NAMED_PLANS["chaos"].has_serve_faults
        assert NAMED_PLANS["chaos"].serve_fault_rate == 0.0
