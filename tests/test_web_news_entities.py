"""Tests for the news pool, entity presence, and the WebWorld facade."""

import pytest

from repro.geo.coords import LatLon
from repro.queries.corpus import build_corpus
from repro.queries.model import Query, QueryCategory
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.entities import (
    ambiguous_entities,
    city_docs,
    state_docs,
    universal_docs,
)
from repro.web.news import ARTICLE_LIFETIME_DAYS, NewsPool, state_outlet
from repro.web.urls import Url
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)


@pytest.fixture(scope="module")
def news():
    return NewsPool(seed=555)


@pytest.fixture(scope="module")
def queries():
    corpus = build_corpus()
    return {
        "generic": corpus.get("School"),
        "brand": corpus.get("Starbucks"),
        "controversial": corpus.get("Gay Marriage"),
        "broad": corpus.get("Health"),
        "obama": corpus.get("Barack Obama"),
        "common": corpus.get("Bill Johnson"),
    }


class TestDocument:
    def test_point_scope_requires_anchor(self):
        with pytest.raises(ValueError):
            Document(
                url=Url(host="x.example.com"),
                title="t",
                kind=DocKind.LOCAL_BUSINESS,
                scope=GeoScope.POINT,
                base_score=1.0,
            )

    def test_state_scope_requires_state(self):
        with pytest.raises(ValueError):
            Document(
                url=Url(host="x.example.com"),
                title="t",
                kind=DocKind.ORGANIC,
                scope=GeoScope.STATE,
                base_score=1.0,
            )

    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            Document(
                url=Url(host="x.example.com"),
                title="t",
                kind=DocKind.ORGANIC,
                scope=GeoScope.NATIONAL,
                base_score=-1.0,
            )


class TestNewsPool:
    def test_articles_deterministic(self, news):
        a = news.articles_for("Gay Marriage", 10)
        b = news.articles_for("Gay Marriage", 10)
        assert [str(x.document.url) for x in a] == [str(x.document.url) for x in b]

    def test_adjacent_days_share_articles(self, news):
        today = {str(a.document.url) for a in news.articles_for("Gun Control", 10)}
        tomorrow = {str(a.document.url) for a in news.articles_for("Gun Control", 11)}
        if today and tomorrow:
            assert today & tomorrow, "adjacent days should share pool entries"

    def test_articles_age_out(self, news):
        day = 20
        old = {str(a.document.url) for a in news.articles_for("Fracking", day)}
        later = {
            str(a.document.url)
            for a in news.articles_for("Fracking", day + ARTICLE_LIFETIME_DAYS + 1)
        }
        assert not (old & later)

    def test_fresher_articles_score_higher(self, news):
        articles = news.articles_for("Gun Control", 15)
        nationals = [a for a in articles if a.document.scope is GeoScope.NATIONAL]
        by_age = sorted(nationals, key=lambda a: a.published_day, reverse=True)
        if len(by_age) >= 2:
            assert by_age[0].document.base_score >= by_age[-1].document.base_score

    def test_state_article_scoped(self, news):
        found = False
        for day in range(30):
            for article in news.articles_for("Gun Control", day, state="Ohio"):
                if article.document.scope is GeoScope.STATE:
                    assert article.document.state == "Ohio"
                    assert article.outlet == state_outlet("Ohio")
                    found = True
        assert found, "expected at least one state-scoped article in 30 days"

    def test_news_card_gate_deterministic(self, news):
        assert news.has_news_card("Gay Marriage", 3, affinity_threshold=0.45) == \
            news.has_news_card("Gay Marriage", 3, affinity_threshold=0.45)

    def test_lower_threshold_means_more_cards(self, news):
        topics = [f"topic {i}" for i in range(50)]
        low = sum(news.has_news_card(t, 0, affinity_threshold=0.2) for t in topics)
        high = sum(news.has_news_card(t, 0, affinity_threshold=0.8) for t in topics)
        assert low > high


class TestEntities:
    def test_universal_slate_sizes(self, queries):
        assert len(universal_docs(queries["generic"])) >= 10
        assert len(universal_docs(queries["brand"])) >= 10
        assert len(universal_docs(queries["controversial"])) == 12
        assert len(universal_docs(queries["obama"])) == 12

    def test_universal_docs_all_national(self, queries):
        for doc in universal_docs(queries["generic"]):
            assert doc.scope is GeoScope.NATIONAL

    def test_universal_scores_strictly_decreasing(self, queries):
        for key in ("generic", "brand", "controversial", "obama"):
            scores = [d.base_score for d in universal_docs(queries[key])]
            assert scores == sorted(scores, reverse=True)
            assert len(set(scores)) == len(scores)

    def test_brand_slate_led_by_official_site(self, queries):
        top = universal_docs(queries["brand"])[0]
        assert "starbucks" in top.url.host

    def test_state_docs_for_generic_local(self, queries):
        docs = state_docs(queries["generic"], "Ohio")
        assert len(docs) == 1
        assert docs[0].state == "Ohio"

    def test_no_state_docs_for_brands(self, queries):
        assert state_docs(queries["brand"], "Ohio") == []

    def test_broad_controversial_has_stronger_state_presence(self, queries):
        broad = state_docs(queries["broad"], "Ohio")[0]
        normal = state_docs(queries["controversial"], "Ohio")[0]
        assert broad.base_score > normal.base_score

    def test_politician_state_docs_only_at_home(self, queries):
        common = queries["common"]  # Bill Johnson, home state Ohio
        assert state_docs(common, "Ohio")
        assert state_docs(common, "Texas") == []

    def test_national_politician_has_no_state_docs(self, queries):
        assert state_docs(queries["obama"], "Ohio") == []

    def test_city_docs_only_for_generic_local(self, queries):
        from repro.web.grid import GridCell

        cell = GridCell(100, 200)
        assert city_docs(queries["generic"], cell)
        assert city_docs(queries["brand"], cell) == []
        assert city_docs(queries["controversial"], cell) == []

    def test_ambiguous_entities_only_for_common_names(self, queries):
        assert ambiguous_entities(queries["common"], world_seed=9)
        assert ambiguous_entities(queries["obama"], world_seed=9) == []

    def test_ambiguous_entities_are_anchored(self, queries):
        for entity in ambiguous_entities(queries["common"], world_seed=9):
            assert entity.document.anchor is not None
            assert entity.document.scope is GeoScope.POINT


class TestWebWorld:
    def test_poi_candidates_for_local_only(self, queries):
        world = WebWorld(777)
        assert world.poi_candidates(
            queries["controversial"], CLEVELAND, radius_miles=4.0
        ) == []
        assert world.poi_candidates(queries["generic"], CLEVELAND, radius_miles=4.0)

    def test_brand_outlets_live_under_brand_domain(self, queries):
        world = WebWorld(777)
        outlets = world.poi_candidates(queries["brand"], CLEVELAND, radius_miles=6.0)
        assert outlets
        assert all(doc.url.host == "starbucks.example.com" for doc in outlets)

    def test_maps_places_distinct_from_organic_urls(self, queries):
        world = WebWorld(777)
        places = world.maps_places(queries["generic"], CLEVELAND, count=3)
        assert places
        assert all(doc.url.host == "maps.example.com" for doc in places)
        assert all(doc.kind is DocKind.MAP_PLACE for doc in places)

    def test_maps_places_empty_for_non_local(self, queries):
        world = WebWorld(777)
        assert world.maps_places(queries["obama"], CLEVELAND, count=3) == []

    def test_news_articles_truncated(self, queries):
        world = WebWorld(777)
        docs = world.news_articles(queries["controversial"], day=5, state="Ohio", count=2)
        assert len(docs) <= 2

    def test_same_seed_same_world(self, queries):
        a = WebWorld(31)
        b = WebWorld(31)
        pa = a.poi_candidates(queries["generic"], CLEVELAND, radius_miles=3.0)
        pb = b.poi_candidates(queries["generic"], CLEVELAND, radius_miles=3.0)
        assert [str(d.url) for d in pa] == [str(d.url) for d in pb]
