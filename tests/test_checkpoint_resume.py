"""Kill-and-resume parity for checkpointed crawls.

The contract under test (the PR's acceptance bar): a study run with
``checkpoint=path`` that is killed at *any* point — any round boundary,
mid-round, sequential or sharded over workers — and then re-run with
the same arguments produces a dataset, failure log, and stats that are
byte-identical to an uninterrupted run, with zero lost records and
every injected fault accounted for.

The kill mechanism is a sink that raises after N records: records are
released to the sink only after their round is durable in the journal,
so raising there models dying at the worst possible moment for every
value of N — deterministically, with no signal-delivery flakiness.
"""

import json
import os

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.faults.checkpoint import CheckpointError, load_checkpoint
from repro.faults.plan import FaultPlan
from repro.queries.corpus import build_corpus
from repro.store import StoreCorruption
from repro.store.record_log import read_log

#: >10% request-level fault rate, every fault kind enabled.
CHAOS = FaultPlan.named("chaos")


class Killed(Exception):
    """Simulated process death."""


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    config = StudyConfig.small(
        _queries(), days=2, locations_per_granularity=2
    ).with_overrides(machine_count=5, fault_plan=CHAOS, max_retries=2)
    return config.with_overrides(**overrides) if overrides else config


def _serialized(dataset) -> str:
    return "".join(json.dumps(record.to_dict()) + "\n" for record in dataset)


def _killing_sink(after: int):
    """A sink that dies once it has seen ``after`` records."""
    seen = []

    def sink(record):
        seen.append(record)
        if len(seen) >= after:
            raise Killed(f"killed after {after} records")

    return sink, seen


def _run_killed_then_resumed(config, path, kill_after: int, workers: int = 1):
    """Kill a checkpointed run after N records, resume, return the study."""
    sink, _ = _killing_sink(kill_after)
    with pytest.raises(Killed):
        Study(config).run(sink=sink, workers=workers, checkpoint=str(path))
    resumed = Study(config)
    replayed = []
    dataset = resumed.run(
        sink=replayed.append, workers=workers, checkpoint=str(path)
    )
    return resumed, dataset, replayed


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted run everything must be byte-identical to."""
    study = Study(_config())
    dataset = study.run()
    return study, dataset


class TestSequentialResume:
    def test_uninterrupted_checkpointed_run_matches_plain(self, baseline, tmp_path):
        base_study, base_dataset = baseline
        study = Study(_config())
        dataset = study.run(checkpoint=str(tmp_path / "crawl.ckpt"))
        assert _serialized(dataset) == _serialized(base_dataset)
        assert study.stats == base_study.stats
        assert study.failures == base_study.failures
        assert study.fault_stats == base_study.fault_stats

    def test_kill_at_every_round_boundary(self, baseline, tmp_path):
        base_study, base_dataset = baseline
        expected = _serialized(base_dataset)
        rounds = base_study.round_count()
        treatments = len(base_study.treatments)
        assert rounds == 6
        # Kill exactly at each round boundary: the sink has seen all of
        # rounds 0..k's records and dies before round k+1 begins.
        boundaries = []
        committed = 0
        for scheduled in base_study.iter_rounds():
            round_records = treatments - sum(
                1
                for f in base_study.failures
                if f.query == scheduled.query.text and f.day == scheduled.day_offset
            )
            committed += round_records
            boundaries.append(committed)
        for kill_after in boundaries[:-1]:
            if kill_after == 0:
                continue
            path = tmp_path / f"boundary-{kill_after}.ckpt"
            resumed, dataset, replayed = _run_killed_then_resumed(
                _config(), path, kill_after
            )
            assert _serialized(dataset) == expected, f"kill@{kill_after}"
            assert resumed.stats == base_study.stats
            assert resumed.failures == base_study.failures
            assert resumed.fault_stats == base_study.fault_stats
            assert resumed.fault_stats.unaccounted() == {}
            # the resumed sink stream is the complete canonical stream
            assert _serialized(dataset) == _serialized(replayed)

    def test_kill_mid_round(self, baseline, tmp_path):
        base_study, base_dataset = baseline
        expected = _serialized(base_dataset)
        # Odd kill points land mid-round (rounds hold ~12 records).
        for kill_after in (1, 5, 17, len(base_dataset) - 1):
            path = tmp_path / f"midround-{kill_after}.ckpt"
            resumed, dataset, _ = _run_killed_then_resumed(
                _config(), path, kill_after
            )
            assert _serialized(dataset) == expected, f"kill@{kill_after}"
            assert resumed.failures == base_study.failures

    def test_double_kill_then_resume(self, baseline, tmp_path):
        """Dying twice at different points still converges."""
        base_study, base_dataset = baseline
        path = tmp_path / "double.ckpt"
        sink, _ = _killing_sink(7)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        sink, _ = _killing_sink(9)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        dataset = Study(_config()).run(checkpoint=str(path))
        assert _serialized(dataset) == _serialized(base_dataset)

    def test_resume_tolerates_partial_tail(self, baseline, tmp_path):
        base_study, base_dataset = baseline
        path = tmp_path / "tail.ckpt"
        sink, _ = _killing_sink(13)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        # simulate dying mid-write: a torn, newline-less JSON fragment
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "round", "ordinal": 99, "outco')
        dataset = Study(_config()).run(checkpoint=str(path))
        assert _serialized(dataset) == _serialized(base_dataset)

    def test_completed_journal_replays_without_crawling(self, tmp_path):
        path = tmp_path / "done.ckpt"
        first = Study(_config())
        expected = _serialized(first.run(checkpoint=str(path)))
        replay = Study(_config())
        dataset = replay.run(checkpoint=str(path))
        assert _serialized(dataset) == expected
        assert replay.stats == first.stats


class TestParallelResume:
    def test_kill_mid_shard_with_two_workers(self, baseline, tmp_path):
        base_study, base_dataset = baseline
        expected = _serialized(base_dataset)
        for kill_after in (3, 11, 25):
            path = tmp_path / f"par-{kill_after}.ckpt"
            resumed, dataset, replayed = _run_killed_then_resumed(
                _config(), path, kill_after, workers=2
            )
            assert _serialized(dataset) == expected, f"workers=2 kill@{kill_after}"
            assert resumed.stats == base_study.stats
            assert resumed.failures == base_study.failures
            assert resumed.fault_stats == base_study.fault_stats
            assert resumed.fault_stats.unaccounted() == {}
            assert _serialized(dataset) == _serialized(replayed)

    def test_uninterrupted_parallel_checkpoint_matches_sequential(
        self, baseline, tmp_path
    ):
        _, base_dataset = baseline
        study = Study(_config())
        dataset = study.run(workers=2, checkpoint=str(tmp_path / "par.ckpt"))
        assert _serialized(dataset) == _serialized(base_dataset)

    def test_sequential_kill_parallel_resume_is_refused(self, tmp_path):
        path = tmp_path / "cross.ckpt"
        sink, _ = _killing_sink(5)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        with pytest.raises(CheckpointError, match="worker"):
            Study(_config()).run(workers=2, checkpoint=str(path))


class TestMismatchRejection:
    def test_different_config_is_refused(self, tmp_path):
        path = tmp_path / "mismatch.ckpt"
        sink, _ = _killing_sink(5)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        other = _config(seed=_config().seed + 1)
        with pytest.raises(CheckpointError, match="different study"):
            Study(other).run(checkpoint=str(path))

    def test_different_fault_plan_is_refused(self, tmp_path):
        path = tmp_path / "plan.ckpt"
        sink, _ = _killing_sink(5)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        other = _config(fault_plan=FaultPlan.named("flaky-network"))
        with pytest.raises(CheckpointError):
            Study(other).run(checkpoint=str(path))

    def test_garbage_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_text("this is not a checkpoint\n", encoding="utf-8")
        with pytest.raises(CheckpointError):
            Study(_config()).run(checkpoint=str(path))


class TestFramedJournalDamage:
    """Satellite 4: the framed journal under byte-level disk damage."""

    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        """A complete 1-day checkpointed run and its journal geometry."""
        config = StudyConfig.small(
            _queries(), days=1, locations_per_granularity=2
        ).with_overrides(machine_count=5)
        path = tmp_path_factory.mktemp("journal") / "full.ckpt"
        study = Study(config)
        study.run(checkpoint=str(path))
        data = path.read_bytes()
        # One round's group = a round line + one state line (workers=1);
        # a round is durable at the end of its state line.
        round_ends = [
            end
            for payload, end in read_log(str(path))
            if payload.get("kind") == "state"
        ]
        assert len(round_ends) >= 2
        return study, data, round_ends

    def test_torn_tail_at_every_byte_of_a_round_boundary(
        self, journal, tmp_path
    ):
        """Property sweep: truncate the journal at *every* byte offset
        across one full round group (round line + state line) and load.

        Whatever the cut — mid frame header, mid checksum, mid payload,
        exactly on the newline — the loader must return precisely the
        rounds whose groups are complete, never raise, and truncate the
        file back to that durable prefix.
        """
        study, data, round_ends = journal
        fingerprint = study.checkpoint_fingerprint()
        target = tmp_path / "torn.ckpt"
        start, stop = round_ends[0], round_ends[1]
        for cut in range(start, stop + 1):
            target.write_bytes(data[:cut])
            state = load_checkpoint(
                str(target), expected_fingerprint=fingerprint, workers=1
            )
            expected = 2 if cut == stop else 1
            assert state.next_ordinal == expected, f"cut@{cut}"
            assert os.path.getsize(target) == round_ends[expected - 1], (
                f"cut@{cut}: partial tail not truncated"
            )

    def test_bit_flip_that_still_parses_as_json_is_detected(
        self, journal, tmp_path
    ):
        """A low-bit flip on a digit keeps the payload valid JSON — the
        corruption an unframed journal would silently resume from.  The
        frame's checksum must turn it into a loud ``StoreCorruption``."""
        study, data, _ = journal
        fingerprint = study.checkpoint_fingerprint()
        header_len = len(b"~F1 ") + 8 + 1 + 8 + 1
        lines = data.split(b"\n")
        line = bytearray(lines[1])  # round 0's line, before valid data
        for i in range(header_len, len(line)):
            if chr(line[i]).isdigit():
                line[i] ^= 1
                break
        json.loads(bytes(line[header_len:]))  # still parses as JSON
        lines[1] = bytes(line)
        target = tmp_path / "flipped.ckpt"
        target.write_bytes(b"\n".join(lines))
        with pytest.raises(StoreCorruption) as excinfo:
            load_checkpoint(
                str(target), expected_fingerprint=fingerprint, workers=1
            )
        assert excinfo.value.record_index == 1
        assert "fsck" in str(excinfo.value)


class TestNoFaultCheckpoint:
    def test_checkpointing_works_without_a_fault_plan(self, tmp_path):
        config = StudyConfig.small(
            _queries(), days=1, locations_per_granularity=2
        ).with_overrides(machine_count=5)
        base = _serialized(Study(config).run())
        path = tmp_path / "plain.ckpt"
        sink, _ = _killing_sink(9)
        with pytest.raises(Killed):
            Study(config).run(sink=sink, checkpoint=str(path))
        dataset = Study(config).run(checkpoint=str(path))
        assert _serialized(dataset) == base
