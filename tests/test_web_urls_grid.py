"""Tests for the URL model and the geographic grid."""

import pytest

from repro.geo.coords import LatLon
from repro.web.grid import GeoGrid, GridCell
from repro.web.urls import Url, slugify


class TestSlugify:
    def test_basic(self):
        assert slugify("Elementary School") == "elementary-school"

    def test_punctuation_squeezed(self):
        assert slugify("Wendy's!!") == "wendy-s"

    def test_leading_trailing_stripped(self):
        assert slugify("  Coffee  ") == "coffee"

    def test_numbers_kept(self):
        assert slugify("Route 66 Diner") == "route-66-diner"


class TestUrl:
    def test_parse_with_scheme(self):
        url = Url.parse("https://example.com/a/b")
        assert url.host == "example.com"
        assert url.path == "/a/b"

    def test_parse_without_scheme(self):
        assert Url.parse("example.com").path == "/"

    def test_host_lowercased(self):
        assert Url(host="Example.COM").host == "example.com"

    def test_malformed_host_rejected(self):
        with pytest.raises(ValueError):
            Url(host="not a host")
        with pytest.raises(ValueError):
            Url(host="nodots")

    def test_path_must_be_absolute(self):
        with pytest.raises(ValueError):
            Url(host="example.com", path="relative")

    def test_str_round_trip(self):
        url = Url(host="a.example.com", path="/x")
        assert str(url) == "https://a.example.com/x"
        assert Url.parse(str(url)) == url

    def test_domain_is_registrable_suffix(self):
        assert Url(host="www.shop.example.com").domain == "example.com"

    def test_urls_are_hashable_identities(self):
        assert len({Url(host="a.example.com"), Url(host="a.example.com")}) == 1


class TestGeoGrid:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GeoGrid(0)

    def test_cell_of_is_stable(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        assert grid.cell_of(p) == grid.cell_of(p)

    def test_snap_is_idempotent(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        assert grid.snap(grid.snap(p)) == grid.snap(p)

    def test_snap_moves_less_than_cell_diagonal(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        assert grid.distance_miles(p, grid.snap(p)) <= 0.75  # half diagonal

    def test_nearby_points_share_cell(self):
        grid = GeoGrid(2.0)
        p = LatLon(41.430, -81.670)
        q = LatLon(41.4301, -81.6701)
        assert grid.cell_of(p) == grid.cell_of(q)

    def test_distant_points_differ(self):
        grid = GeoGrid(1.0)
        assert grid.cell_of(LatLon(41.43, -81.67)) != grid.cell_of(LatLon(39.96, -83.0))

    def test_projection_round_trip(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        x, y = grid.to_xy_miles(p)
        q = grid.from_xy_miles(x, y)
        assert q.lat == pytest.approx(p.lat, abs=1e-9)
        assert q.lon == pytest.approx(p.lon, abs=1e-9)

    def test_planar_distance_close_to_haversine_locally(self):
        grid = GeoGrid(1.0)
        a = LatLon(41.43, -81.67)
        b = LatLon(41.47, -81.60)
        assert grid.distance_miles(a, b) == pytest.approx(
            a.distance_miles(b), rel=0.05
        )

    def test_cells_within_zero_radius(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        cells = grid.cells_within(p, 0.0)
        assert grid.cell_of(p) in cells
        assert len(cells) == 1

    def test_cells_within_negative_radius_rejected(self):
        grid = GeoGrid(1.0)
        with pytest.raises(ValueError):
            grid.cells_within(LatLon(0, 0), -1.0)

    def test_cells_within_count_scales_with_radius(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        small = grid.cells_within(p, 1.0)
        large = grid.cells_within(p, 4.0)
        assert len(small) < len(large)
        # Disc of radius 4 covers roughly pi*16 = 50 cells plus boundary.
        assert 40 <= len(large) <= 80

    def test_cells_within_deterministic_order(self):
        grid = GeoGrid(1.0)
        p = LatLon(41.43, -81.67)
        assert grid.cells_within(p, 3.0) == grid.cells_within(p, 3.0)

    def test_neighborhood_size(self):
        grid = GeoGrid(1.0)
        assert len(list(grid.iter_neighborhood(GridCell(0, 0), span=1))) == 9
        assert len(list(grid.iter_neighborhood(GridCell(0, 0), span=2))) == 25
