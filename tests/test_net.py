"""Tests for the network substrate: IPs, fleets, GeoIP, DNS."""

import pytest

from repro.geo.coords import LatLon
from repro.net.dns import DNSRecord, DNSResolver, ResolutionError
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address, IPv4Subnet
from repro.net.machines import Machine, MachineFleet, MachineKind


class TestIPv4Address:
    def test_parse_and_str_round_trip(self):
        assert str(IPv4Address.parse("192.0.2.17")) == "192.0.2.17"

    def test_octets(self):
        assert IPv4Address.parse("10.1.2.3").octets == (10, 1, 2, 3)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_addition(self):
        assert str(IPv4Address.parse("10.0.0.1") + 5) == "10.0.0.6"

    def test_malformed_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1", "01.2.3.4", ""):
            with pytest.raises(ValueError):
                IPv4Address.parse(bad)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)
        with pytest.raises(ValueError):
            IPv4Address(-1)


class TestIPv4Subnet:
    def test_parse(self):
        net = IPv4Subnet.parse("192.0.2.0/24")
        assert net.prefix_len == 24
        assert net.size == 256

    def test_contains(self):
        net = IPv4Subnet.parse("192.0.2.0/24")
        assert IPv4Address.parse("192.0.2.200") in net
        assert IPv4Address.parse("192.0.3.1") not in net

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Subnet.parse("192.0.2.1/24")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            IPv4Subnet.parse("192.0.2.0/33")

    def test_hosts_excludes_network_and_broadcast(self):
        net = IPv4Subnet.parse("192.0.2.0/24")
        hosts = list(net.hosts())
        assert len(hosts) == 254
        assert str(hosts[0]) == "192.0.2.1"
        assert str(hosts[-1]) == "192.0.2.254"

    def test_slash_31_and_32(self):
        assert len(list(IPv4Subnet.parse("192.0.2.0/31").hosts())) == 2
        assert len(list(IPv4Subnet.parse("192.0.2.1/32").hosts())) == 1

    def test_malformed_cidr_rejected(self):
        with pytest.raises(ValueError):
            IPv4Subnet.parse("192.0.2.0")


class TestMachineFleet:
    def test_crawl_fleet_default_is_44_in_one_slash24(self):
        fleet = MachineFleet.crawl_fleet()
        assert len(fleet) == 44
        net = IPv4Subnet.parse("192.0.2.0/24")
        assert all(m.ip in net for m in fleet)

    def test_crawl_machines_share_location(self):
        fleet = MachineFleet.crawl_fleet()
        assert len({m.location for m in fleet}) == 1

    def test_crawl_fleet_unique_ips(self):
        fleet = MachineFleet.crawl_fleet()
        assert len({m.ip for m in fleet}) == 44

    def test_too_many_machines_rejected(self):
        with pytest.raises(ValueError):
            MachineFleet.crawl_fleet(count=300)

    def test_planetlab_fleet_spread_across_states(self):
        fleet = MachineFleet.planetlab_fleet(seed=1, count=50)
        assert len(fleet) == 50
        assert len({m.location for m in fleet}) == 50
        assert all(m.kind is MachineKind.PLANETLAB for m in fleet)

    def test_planetlab_fleet_distinct_slash16s(self):
        fleet = MachineFleet.planetlab_fleet(seed=1, count=50)
        prefixes = {(m.ip.octets[0], m.ip.octets[1]) for m in fleet}
        assert len(prefixes) == 50

    def test_planetlab_deterministic(self):
        a = MachineFleet.planetlab_fleet(seed=1, count=10)
        b = MachineFleet.planetlab_fleet(seed=1, count=10)
        assert [m.ip for m in a] == [m.ip for m in b]

    def test_duplicate_ips_rejected(self):
        m = Machine("x", IPv4Address.parse("10.0.0.1"), LatLon(0, 0), MachineKind.CRAWLER)
        with pytest.raises(ValueError):
            MachineFleet(name="dup", machines=[m, m])


class TestGeoIP:
    def test_host_lookup(self):
        db = GeoIPDatabase()
        ip = IPv4Address.parse("10.0.0.1")
        db.add_host(ip, LatLon(40.0, -80.0))
        assert db.lookup(ip) == LatLon(40.0, -80.0)

    def test_subnet_lookup(self):
        db = GeoIPDatabase()
        db.add_subnet(IPv4Subnet.parse("10.0.0.0/8"), LatLon(40.0, -80.0))
        assert db.lookup(IPv4Address.parse("10.99.1.2")) == LatLon(40.0, -80.0)

    def test_longest_prefix_wins(self):
        db = GeoIPDatabase()
        db.add_subnet(IPv4Subnet.parse("10.0.0.0/8"), LatLon(40.0, -80.0))
        db.add_subnet(IPv4Subnet.parse("10.1.0.0/16"), LatLon(30.0, -90.0))
        assert db.lookup(IPv4Address.parse("10.1.2.3")) == LatLon(30.0, -90.0)

    def test_host_beats_subnet(self):
        db = GeoIPDatabase()
        ip = IPv4Address.parse("10.1.2.3")
        db.add_subnet(IPv4Subnet.parse("10.0.0.0/8"), LatLon(40.0, -80.0))
        db.add_host(ip, LatLon(20.0, -100.0))
        assert db.lookup(ip) == LatLon(20.0, -100.0)

    def test_unknown_is_none(self):
        assert GeoIPDatabase().lookup(IPv4Address.parse("8.8.8.8")) is None

    def test_register_fleet(self):
        db = GeoIPDatabase()
        fleet = MachineFleet.planetlab_fleet(seed=2, count=5)
        db.register_fleet(fleet)
        for machine in fleet:
            assert db.lookup(machine.ip) == machine.location


class TestDNS:
    def _resolver(self):
        resolver = DNSResolver()
        addresses = [IPv4Address.parse(f"198.51.100.{i}") for i in range(1, 5)]
        resolver.add_record(DNSRecord(name="search.example.com", addresses=addresses))
        return resolver, addresses

    def test_record_requires_addresses(self):
        with pytest.raises(ValueError):
            DNSRecord(name="x.example.com", addresses=[])

    def test_resolution_rotates_with_query_id(self):
        resolver, _ = self._resolver()
        results = {
            resolver.resolve("search.example.com", query_id=i) for i in range(50)
        }
        assert len(results) > 1

    def test_resolution_deterministic_per_query_id(self):
        resolver, _ = self._resolver()
        assert resolver.resolve("search.example.com", query_id=7) == resolver.resolve(
            "search.example.com", query_id=7
        )

    def test_pinning_fixes_resolution(self):
        resolver, addresses = self._resolver()
        resolver.pin("search.example.com", addresses[2])
        results = {
            resolver.resolve("search.example.com", query_id=i) for i in range(20)
        }
        assert results == {addresses[2]}

    def test_unpin_restores_rotation(self):
        resolver, addresses = self._resolver()
        resolver.pin("search.example.com", addresses[0])
        resolver.unpin("search.example.com")
        results = {
            resolver.resolve("search.example.com", query_id=i) for i in range(50)
        }
        assert len(results) > 1

    def test_pin_to_foreign_address_rejected(self):
        resolver, _ = self._resolver()
        with pytest.raises(ValueError):
            resolver.pin("search.example.com", IPv4Address.parse("10.0.0.1"))

    def test_unknown_name_raises(self):
        resolver, _ = self._resolver()
        with pytest.raises(ResolutionError):
            resolver.resolve("nonexistent.example.com")

    def test_case_insensitive(self):
        resolver, _ = self._resolver()
        assert resolver.resolve("SEARCH.Example.COM", query_id=1) == resolver.resolve(
            "search.example.com", query_id=1
        )
