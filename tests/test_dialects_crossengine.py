"""Tests for engine dialects, dialect-aware parsing, and the
cross-engine audit."""

import pytest

from repro.core.crossengine import BINGO_CALIBRATION, compare_engines
from repro.core.experiment import StudyConfig
from repro.core.parser import SerpParseError, parse_serp_html
from repro.core.runner import Study
from repro.engine import DatacenterCluster, SearchEngine, SearchRequest
from repro.engine.dialect import BINGO, DIALECTS, GOOGLE_LIKE, EngineDialect, register_dialect
from repro.engine.render import render_captcha, render_page
from repro.geo.coords import LatLon
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory

CLEVELAND = LatLon(41.4993, -81.6944)


def _queries():
    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    return (
        [q for q in local if not q.is_brand][:4]
        + [q for q in local if q.is_brand][:2]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:3]
    )


@pytest.fixture()
def bingo_engine(world, corpus):
    return SearchEngine(
        world,
        DatacenterCluster(hostname=BINGO.hostname, base_ip="203.0.113.0"),
        GeoIPDatabase(),
        corpus=corpus,
        calibration=BINGO_CALIBRATION,
        seed=777,
        dialect=BINGO,
    )


class TestDialect:
    def test_registry_has_both_builtin_dialects(self):
        names = {d.name for d in DIALECTS}
        assert {"google-like", "bingo"} <= names

    def test_dialects_use_disjoint_vocabulary(self):
        assert GOOGLE_LIKE.results_container_id != BINGO.results_container_id
        assert GOOGLE_LIKE.link_class != BINGO.link_class
        assert GOOGLE_LIKE.hostname != BINGO.hostname

    def test_invalid_dialect_rejected(self):
        with pytest.raises(ValueError):
            EngineDialect(
                name="",
                hostname="x.example.com",
                results_container_id="a",
                card_class="b",
                organic_class="c",
                maps_class="d",
                news_class="e",
                link_class="f",
                maps_item_class="g",
                news_item_class="h",
                location_note_class="i",
                datacenter_note_class="j",
                day_note_class="k",
                query_input_name="q",
                captcha_id="c",
                maps_heading="m",
                news_heading="n",
                related_class="r",
                related_item_class="ri",
                knowledge_class="k",
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_dialect(GOOGLE_LIKE)


class TestDialectRendering:
    def test_bingo_pages_use_bingo_markup(self, bingo_engine):
        request = SearchRequest(
            query_text="School",
            client_ip=IPv4Address.parse("192.0.2.9"),
            frontend_ip=bingo_engine.cluster[0].frontend_ip,
            timestamp_minutes=5.0,
            gps=CLEVELAND,
            nonce=1,
        )
        html = bingo_engine.handle(request).html
        assert 'id="b_results"' in html
        assert "b_algo" in html
        assert 'id="rso"' not in html

    def test_parser_autodetects_bingo(self, bingo_engine):
        request = SearchRequest(
            query_text="School",
            client_ip=IPv4Address.parse("192.0.2.9"),
            frontend_ip=bingo_engine.cluster[0].frontend_ip,
            timestamp_minutes=5.0,
            gps=CLEVELAND,
            nonce=1,
        )
        page = bingo_engine.serve_page(request)
        parsed = parse_serp_html(render_page(page, BINGO))
        assert parsed.dialect == "bingo"
        assert parsed.urls() == page.links()
        assert parsed.query == "School"

    def test_google_like_pages_still_detect(self, engine, make_request):
        parsed = parse_serp_html(
            engine.handle(make_request("School", gps=CLEVELAND)).html
        )
        assert parsed.dialect == "google-like"

    def test_explicit_dialect_mismatch_raises(self, engine, make_request):
        html = engine.handle(make_request("School", gps=CLEVELAND)).html
        with pytest.raises(SerpParseError):
            parse_serp_html(html, dialect=BINGO)

    def test_bingo_captcha_detected(self):
        parsed = parse_serp_html(render_captcha("School", BINGO))
        assert parsed.is_captcha
        assert parsed.dialect == "bingo"

    def test_footer_metadata_in_bingo_dialect(self, bingo_engine):
        request = SearchRequest(
            query_text="Gay Marriage",
            client_ip=IPv4Address.parse("192.0.2.9"),
            frontend_ip=bingo_engine.cluster[0].frontend_ip,
            timestamp_minutes=5.0,
            gps=CLEVELAND,
            nonce=2,
        )
        parsed = parse_serp_html(bingo_engine.handle(request).html)
        assert parsed.reported_location is not None
        assert parsed.datacenter is not None


class TestCrossEngineStudy:
    @pytest.fixture(scope="class")
    def comparison(self):
        config = StudyConfig.small(
            _queries(), seed=1717, days=1, locations_per_granularity=4
        )
        return compare_engines(config)

    def test_both_audits_present(self, comparison):
        names = {audit.engine for audit in comparison.audits}
        assert names == {"google-like", "bingo"}

    def test_both_engines_personalize_locally(self, comparison):
        for audit in comparison.audits:
            assert audit.local_net_by_granularity["national"] > 1.0

    def test_engines_differ_in_strength(self, comparison):
        a, b = comparison.audits
        assert (
            abs(
                a.local_net_by_granularity["national"]
                - b.local_net_by_granularity["national"]
            )
            > 0.5
        )

    def test_overlap_partial(self, comparison):
        # Same web, different engines: overlapping but not identical.
        assert 0.4 < comparison.overlap.mean < 0.99

    def test_rbo_below_jaccard(self, comparison):
        # Order-sensitive overlap is at most the set overlap here.
        assert comparison.rbo.mean <= comparison.overlap.mean + 0.05

    def test_render_contains_both_engines(self, comparison):
        text = comparison.render()
        assert "google-like" in text and "bingo" in text

    def test_more_personalized_engine_named(self, comparison):
        assert comparison.more_personalized_engine() in ("google-like", "bingo")

    def test_requires_two_dialects(self):
        config = StudyConfig.small(_queries(), days=1, locations_per_granularity=3)
        with pytest.raises(ValueError):
            compare_engines(config, dialects=(GOOGLE_LIKE,))

    def test_bingo_study_runs_standalone(self):
        config = StudyConfig.small(
            _queries()[:3], seed=99, days=1, locations_per_granularity=3
        ).with_overrides(dialect=BINGO, calibration=BINGO_CALIBRATION)
        study = Study(config)
        dataset = study.run()
        assert len(dataset) == 3 * 9 * 2
        assert not study.failures
