"""Tests for the schedule-feasibility simulator and the markdown report."""

import pytest

from repro.core.experiment import StudyConfig
from repro.core.reportcard import generate_markdown
from repro.core.schedule import simulate_crawl_schedule


class TestScheduleSimulator:
    def test_paper_design_is_feasible(self):
        report = simulate_crawl_schedule(StudyConfig())
        assert report.feasible
        assert report.treatments == 118  # 59 locations x 2 copies
        assert report.machines == 44
        assert report.total_requests == 141600

    def test_single_machine_is_infeasible(self):
        report = simulate_crawl_schedule(StudyConfig().with_overrides(machine_count=1))
        assert not report.feasible
        assert any("smears" in v for v in report.violations)

    def test_round_span_scales_inversely_with_machines(self):
        many = simulate_crawl_schedule(StudyConfig())
        few = simulate_crawl_schedule(StudyConfig().with_overrides(machine_count=11))
        assert few.round_span_seconds > many.round_span_seconds

    def test_rate_limit_violation_detected(self):
        config = StudyConfig().with_overrides(
            machine_count=2,
            calibration=StudyConfig().calibration.with_overrides(
                ratelimit_max_per_minute=3
            ),
        )
        report = simulate_crawl_schedule(config)
        assert any("per-IP rate" in v for v in report.violations)

    def test_slow_requests_blow_the_round(self):
        report = simulate_crawl_schedule(
            StudyConfig(), request_duration_seconds=300.0
        )
        assert not report.feasible

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            simulate_crawl_schedule(StudyConfig(), request_duration_seconds=0)

    def test_custom_locations_counted(self):
        from repro.geo.germany import germany_study_locations

        locations = germany_study_locations(1, land_count=5, kreis_count=5, bezirk_count=5)
        config = StudyConfig().with_overrides(study_locations=locations)
        report = simulate_crawl_schedule(config)
        assert report.treatments == 30

    def test_render_mentions_feasibility(self):
        text = simulate_crawl_schedule(StudyConfig()).render()
        assert "feasible: yes" in text

    def test_crawl_days_accounts_for_blocks(self):
        # 240 queries at 120/block over 5 days each = 10 crawl days.
        assert simulate_crawl_schedule(StudyConfig()).crawl_days == 10


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def markdown(self, small_dataset):
        return generate_markdown(small_dataset)

    def test_contains_all_sections(self, markdown):
        for heading in (
            "# Location-personalization audit",
            "## Headline",
            "## Noise",
            "## Personalization",
            "## Result-type attribution",
            "## Most and least personalized terms",
            "## Consistency over days",
            "## Extensions",
        ):
            assert heading in markdown

    def test_tables_are_markdown(self, markdown):
        assert "| granularity | category |" in markdown
        assert "|---|" in markdown

    def test_every_category_in_headline(self, markdown, small_dataset):
        for category in small_dataset.categories():
            assert category in markdown

    def test_extensions_optional(self, small_dataset):
        without = generate_markdown(small_dataset, include_extensions=False)
        assert "## Extensions" not in without

    def test_custom_title(self, small_dataset):
        text = generate_markdown(small_dataset, title="My Audit")
        assert text.startswith("# My Audit")

    def test_single_day_dataset_skips_consistency(self, small_dataset):
        single = small_dataset.filter(day=0)
        text = generate_markdown(single)
        assert "## Consistency over days" not in text
