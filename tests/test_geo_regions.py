"""Tests for regions, the USA/Ohio/Cuyahoga location tables, and
reverse geolocation."""

import itertools
import statistics

import pytest

from repro.geo.coords import LatLon
from repro.geo.cuyahoga import CUYAHOGA_CENTER, cuyahoga_voting_districts
from repro.geo.locate import nearest_state
from repro.geo.ohio import OHIO_COUNTIES, ohio_county, ohio_county_regions
from repro.geo.regions import Region, RegionKind
from repro.geo.usa import US_STATES, us_state, us_state_regions


class TestRegion:
    def test_qualified_name_includes_parent(self):
        region = Region("Cuyahoga", RegionKind.COUNTY, LatLon(41.4, -81.7), parent="Ohio")
        assert region.qualified_name == "county:Ohio/Cuyahoga"

    def test_qualified_name_without_parent(self):
        region = Region("USA", RegionKind.NATION, LatLon(39.8, -98.6))
        assert region.qualified_name == "nation:USA"

    def test_distance_between_regions(self):
        ohio = us_state("Ohio")
        texas = us_state("Texas")
        assert ohio.distance_miles(texas) > 900


class TestUSStates:
    def test_fifty_states(self):
        assert len(US_STATES) == 50
        assert len(us_state_regions()) == 50

    def test_unknown_state_rejected(self):
        with pytest.raises(KeyError):
            us_state("Narnia")

    def test_state_region_fields(self):
        ohio = us_state("Ohio")
        assert ohio.kind is RegionKind.STATE
        assert ohio.parent == "USA"
        assert ohio.fips == "39"

    def test_centroids_inside_plausible_us_bounds(self):
        for name, center in US_STATES.items():
            assert 18.0 < center.lat < 72.0, name
            assert -180.0 < center.lon < -66.0, name

    def test_regions_sorted_alphabetically(self):
        names = [r.name for r in us_state_regions()]
        assert names == sorted(names)


class TestOhioCounties:
    def test_eighty_eight_counties(self):
        assert len(OHIO_COUNTIES) == 88
        assert len(set(OHIO_COUNTIES)) == 88
        assert len(ohio_county_regions()) == 88

    def test_cuyahoga_present_with_real_centroid(self):
        cuyahoga = ohio_county("Cuyahoga")
        assert cuyahoga.center.lat == pytest.approx(41.43, abs=0.1)
        assert cuyahoga.parent == "Ohio"

    def test_unknown_county_rejected(self):
        with pytest.raises(KeyError):
            ohio_county("Kings")

    def test_deterministic_synthesised_centroids(self):
        assert ohio_county("Noble").center == ohio_county("Noble").center

    def test_mean_pairwise_distance_about_100_miles(self):
        # Paper: the sampled counties are on average 100 miles apart.
        regions = ohio_county_regions()
        distances = [
            a.distance_miles(b) for a, b in itertools.combinations(regions, 2)
        ]
        assert 60 < statistics.fmean(distances) < 150

    def test_counties_resolve_to_ohio(self):
        misattributed = [
            r.name for r in ohio_county_regions() if nearest_state(r.center) != "Ohio"
        ]
        # The nearest-anchor reverse geocoder may miss a border county or
        # two, but the overwhelming majority must resolve correctly.
        assert len(misattributed) <= 2


class TestCuyahogaDistricts:
    def test_default_count(self):
        assert len(cuyahoga_voting_districts()) == 60

    def test_custom_count(self):
        assert len(cuyahoga_voting_districts(15)) == 15

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            cuyahoga_voting_districts(0)

    def test_districts_near_cuyahoga(self):
        for district in cuyahoga_voting_districts(30):
            assert district.center.distance_miles(CUYAHOGA_CENTER) < 15

    def test_neighbouring_districts_about_one_mile_apart(self):
        # Paper: voting districts are on average 1 mile apart; we check
        # nearest-neighbour spacing is on that order.
        districts = cuyahoga_voting_districts(30)
        spacings = []
        for d in districts:
            spacings.append(
                min(
                    d.center.distance_miles(other.center)
                    for other in districts
                    if other is not d
                )
            )
        assert 0.4 < statistics.fmean(spacings) < 2.0

    def test_deterministic(self):
        a = cuyahoga_voting_districts(20)
        b = cuyahoga_voting_districts(20)
        assert [d.center for d in a] == [d.center for d in b]

    def test_unique_names(self):
        names = [d.name for d in cuyahoga_voting_districts(40)]
        assert len(set(names)) == len(names)


class TestNearestState:
    def test_state_centroids_resolve_to_themselves(self):
        for name, center in US_STATES.items():
            assert nearest_state(center) == name

    def test_cleveland_is_ohio(self):
        assert nearest_state(LatLon(41.4993, -81.6944)) == "Ohio"

    def test_cincinnati_is_ohio_despite_border(self):
        # Cincinnati is closer to Indiana's centroid than Ohio's; the
        # city-anchor gazetteer must still resolve it to Ohio.
        assert nearest_state(LatLon(39.1031, -84.5120)) == "Ohio"

    def test_manhattan_is_new_york(self):
        assert nearest_state(LatLon(40.7128, -74.0060)) == "New York"
