"""Tests for the content analysis and the session-carryover experiment."""

import pytest

from repro.core.carryover import run_carryover_experiment
from repro.core.content import (
    ContentAnalysis,
    PageContentProfile,
    SourceClassifier,
    SourceType,
)
from repro.engine.calibration import EngineCalibration


class TestSourceClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        return SourceClassifier()

    @pytest.mark.parametrize(
        "url,expected",
        [
            ("https://maps.example.com/place/x", SourceType.MAPS_PLACE),
            ("https://encyclopedia.example.org/wiki/school", SourceType.REFERENCE),
            ("https://citydirectory.example.com/search/school", SourceType.DIRECTORY),
            (
                "https://citydirectory.example.com/maplewood/school/x-1-2-3",
                SourceType.BUSINESS,
            ),
            ("https://ohio.example.gov/services/school", SourceType.GOVERNMENT),
            ("https://cityofmaplewood.example.gov/school", SourceType.LOCAL_OUTLET),
            ("https://ohiodispatch.example.com/opinion/health", SourceType.NEWS_STATE),
            ("https://dailynational.example.com/explainer/health", SourceType.NEWS_NATIONAL),
            ("https://chirper.example.com/starbucks", SourceType.SOCIAL),
            ("https://citizensalliance.example.org/issues/health", SourceType.ADVOCACY_PRO),
            ("https://libertycoalition.example.org/stop/health", SourceType.ADVOCACY_CON),
            ("https://scholarlycommons.example.edu/papers/health", SourceType.ACADEMIC),
            ("https://some-school.maplewood.example.com/", SourceType.BUSINESS),
            ("https://starbucks.example.com/locations/maplewood/x", SourceType.BUSINESS),
            ("https://qna.example.com/questions/school", SourceType.OTHER),
        ],
    )
    def test_classification(self, classifier, url, expected):
        assert classifier.classify(url) is expected

    def test_custom_rule(self):
        classifier = SourceClassifier()
        classifier.add_rule(r"myblog\.", SourceType.SOCIAL)
        assert classifier.classify("https://myblog.example.com/post") is SourceType.SOCIAL

    def test_custom_rules_replace_defaults(self):
        classifier = SourceClassifier(rules=[(r".*", SourceType.OTHER)])
        assert classifier.classify("https://maps.example.com/x") is SourceType.OTHER


class TestPageContentProfile:
    def test_locality_share(self):
        profile = PageContentProfile(
            counts={
                SourceType.BUSINESS: 3,
                SourceType.MAPS_PLACE: 3,
                SourceType.REFERENCE: 4,
            },
            distinct_domains=8,
            total=10,
        )
        assert profile.locality_share == pytest.approx(0.6)

    def test_entropy_zero_for_single_type(self):
        profile = PageContentProfile(
            counts={SourceType.REFERENCE: 5}, distinct_domains=1, total=5
        )
        assert profile.source_entropy == 0.0

    def test_entropy_max_for_uniform(self):
        profile = PageContentProfile(
            counts={SourceType.REFERENCE: 2, SourceType.DIRECTORY: 2},
            distinct_domains=4,
            total=4,
        )
        assert profile.source_entropy == pytest.approx(1.0)

    def test_advocacy_balance(self):
        profile = PageContentProfile(
            counts={SourceType.ADVOCACY_PRO: 1, SourceType.ADVOCACY_CON: 1},
            distinct_domains=2,
            total=2,
        )
        assert profile.advocacy_balance() == 0.5

    def test_advocacy_balance_none_without_advocacy(self):
        profile = PageContentProfile(
            counts={SourceType.REFERENCE: 2}, distinct_domains=1, total=2
        )
        assert profile.advocacy_balance() is None

    def test_empty_page(self):
        profile = PageContentProfile(counts={}, distinct_domains=0, total=0)
        assert profile.locality_share == 0.0
        assert profile.source_entropy == 0.0


class TestContentAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, small_dataset):
        return ContentAnalysis(small_dataset)

    def test_local_pages_most_local(self, analysis):
        local = analysis.locality_share("local").mean
        controversial = analysis.locality_share("controversial").mean
        politician = analysis.locality_share("politician").mean
        assert local > controversial
        assert local > politician

    def test_source_mix_fractions_sum_to_one(self, analysis):
        mix = analysis.source_mix("local")
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_controversial_pages_diverse(self, analysis):
        assert analysis.source_entropy("controversial").mean > 1.5

    def test_advocacy_balance_no_geolocal_slant(self, analysis):
        # The Filter-Bubble check the paper motivates: no location sees
        # a politically slanted advocacy mix.
        spread = analysis.advocacy_balance_spread("national")
        assert spread < 0.2

    def test_advocacy_by_location_covers_locations(self, analysis, small_dataset):
        balances = analysis.advocacy_balance_by_location("national")
        assert set(balances) == set(small_dataset.locations("national"))

    def test_unknown_category_raises(self, analysis):
        with pytest.raises(ValueError):
            analysis.source_mix("astrology")


class TestCarryover:
    @pytest.fixture(scope="class")
    def result(self):
        return run_carryover_experiment(
            31337, waits_minutes=(2.0, 9.0, 11.0, 14.0)
        )

    def test_contamination_inside_window(self, result):
        inside = [p for p in result.points if p.wait_minutes < 10.0]
        assert all(p.contaminated for p in inside)
        assert all(p.jaccard.mean < 1.0 for p in inside)

    def test_clean_outside_window(self, result):
        outside = [p for p in result.points if p.wait_minutes > 10.0]
        assert all(not p.contaminated for p in outside)
        assert all(p.jaccard.mean == 1.0 for p in outside)

    def test_cutoff_is_just_past_the_window(self, result):
        assert result.cutoff_wait() == 11.0

    def test_render_mentions_cutoff(self, result):
        assert "11" in result.render()

    def test_custom_window_moves_cutoff(self):
        result = run_carryover_experiment(
            31337,
            waits_minutes=(4.0, 6.0),
            calibration=EngineCalibration(session_window_minutes=5.0),
            query_pairs=[("Starbucks", "Coffee")],
        )
        assert result.points[0].contaminated
        assert not result.points[1].contaminated

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            run_carryover_experiment(1, waits_minutes=())
        with pytest.raises(ValueError):
            run_carryover_experiment(1, query_pairs=[])
