"""Tests for multi-seed replication."""

import pytest

from repro.core.replication import ReplicationResult, SeedOutcome, replicate


@pytest.fixture(scope="module")
def result():
    return replicate([11, 22, 33], locations_per_granularity=5)


class TestReplicate:
    def test_one_outcome_per_seed(self, result):
        assert result.seeds == 3
        assert [o.seed for o in result.outcomes] == [11, 22, 33]

    def test_findings_replicate_across_worlds(self, result):
        # The paper's two structural findings must be properties of the
        # system, not of one seed.
        assert result.gradient_fraction() == 1.0
        assert result.jump_fraction() >= 2 / 3

    def test_local_always_clears_noise(self, result):
        for outcome in result.outcomes:
            assert outcome.local_net["national"] > 2.0

    def test_non_local_always_near_noise(self, result):
        for outcome in result.outcomes:
            assert outcome.politician_net_national < 2.0

    def test_aggregates_have_spread(self, result):
        # Different worlds genuinely differ.
        assert result.local_net("national").std > 0.0

    def test_render(self, result):
        text = result.render()
        assert "3 independent worlds" in text
        assert "distance gradient" in text

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate([1, 1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate([])

    def test_template_config_respected(self):
        from repro.core.experiment import StudyConfig
        from repro.queries.corpus import build_corpus

        corpus = build_corpus()
        template = StudyConfig.small(
            [corpus.get("Coffee"), corpus.get("Gay Marriage"),
             corpus.get("Barack Obama")],
            days=1,
            locations_per_granularity=3,
        )
        result = replicate([7, 8], base_config=template)
        assert result.seeds == 2


class TestSeedOutcomeProperties:
    def test_gradient_predicate(self):
        outcome = SeedOutcome(
            seed=1,
            local_noise=2.0,
            local_edit={"county": 5.0, "state": 9.0, "national": 11.0},
            local_net={"county": 3.0, "state": 7.0, "national": 9.0},
            controversial_net_national=1.0,
            politician_net_national=0.5,
        )
        assert outcome.gradient_holds
        assert outcome.county_state_jump_is_largest

    def test_gradient_violation_detected(self):
        outcome = SeedOutcome(
            seed=1,
            local_noise=2.0,
            local_edit={"county": 9.0, "state": 5.0, "national": 11.0},
            local_net={"county": 7.0, "state": 3.0, "national": 9.0},
            controversial_net_national=1.0,
            politician_net_national=0.5,
        )
        assert not outcome.gradient_holds
