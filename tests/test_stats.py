"""Tests for the statistics helpers."""

import math

import pytest

from repro.stats.correlation import pearson, permutation_pvalue, spearman
from repro.stats.summaries import MeanStd, StreamingMeanStd, summarize


class TestSummarize:
    def test_mean_and_std(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.std == pytest.approx(math.sqrt(1.25))
        assert stats.count == 4

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_accepts_generators(self):
        assert summarize(float(x) for x in range(5)).count == 5


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_constant(self):
        assert pearson([1, 2, 3], [5, 5, 5]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson([1], [2])

    def test_invariance_to_affine_transform(self):
        x = [1.0, 4.0, 2.0, 8.0, 5.0]
        y = [2.0, 3.0, 1.0, 9.0, 4.0]
        assert pearson(x, y) == pytest.approx(
            pearson([10 * v + 3 for v in x], y)
        )


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.0, 8.0, 27.0, 64.0]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_ties_handled(self):
        rho = spearman([1.0, 2.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
        assert -1.0 <= rho <= 1.0

    def test_reversed_is_minus_one(self):
        assert spearman([1, 2, 3, 4], [9, 7, 5, 1]) == pytest.approx(-1.0)


class TestPermutationPvalue:
    def test_strong_correlation_is_significant(self):
        x = list(range(30))
        y = [2.0 * v + 1.0 for v in x]
        assert permutation_pvalue(x, y, iterations=200, seed=1) < 0.05

    def test_random_noise_is_not_significant(self):
        from repro.seeding import derive_rng

        rng = derive_rng(7, "noise")
        x = [rng.random() for _ in range(40)]
        y = [rng.random() for _ in range(40)]
        assert permutation_pvalue(x, y, iterations=200, seed=2) > 0.05

    def test_deterministic(self):
        x = [1.0, 3.0, 2.0, 5.0, 4.0]
        y = [2.0, 1.0, 4.0, 3.0, 5.0]
        a = permutation_pvalue(x, y, iterations=100, seed=3)
        b = permutation_pvalue(x, y, iterations=100, seed=3)
        assert a == b

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            permutation_pvalue([1, 2], [1, 2], iterations=0)

    def test_pvalue_in_unit_interval(self):
        p = permutation_pvalue([1, 2, 3, 4], [4, 2, 3, 1], iterations=99, seed=4)
        assert 0.0 < p <= 1.0


class TestStreamingMeanStd:
    def test_mean_bit_identical_to_summarize(self):
        from repro.seeding import derive_rng

        rng = derive_rng(11, "streaming")
        values = [rng.random() * 10 - 5 for _ in range(500)]
        streaming = StreamingMeanStd()
        streaming.observe_many(values)
        batch = summarize(values)
        assert streaming.mean == batch.mean  # exact: same summation order
        assert streaming.count == batch.count

    def test_std_matches_to_welford_tolerance(self):
        from repro.seeding import derive_rng

        rng = derive_rng(12, "streaming")
        values = [rng.random() * 100 for _ in range(300)]
        streaming = StreamingMeanStd()
        streaming.observe_many(values)
        assert streaming.std == pytest.approx(summarize(values).std, abs=1e-9)

    def test_result_returns_mean_std(self):
        streaming = StreamingMeanStd()
        streaming.observe_many([1.0, 2.0, 3.0, 4.0])
        result = streaming.result()
        assert isinstance(result, MeanStd)
        assert result.mean == 2.5
        assert result.count == 4
        assert result.std == pytest.approx(math.sqrt(1.25))

    def test_empty_result_rejected_like_summarize(self):
        with pytest.raises(ValueError):
            StreamingMeanStd().result()

    def test_single_value(self):
        streaming = StreamingMeanStd()
        streaming.observe(7.0)
        assert streaming.mean == 7.0
        assert streaming.std == 0.0

    def test_merge_matches_single_stream(self):
        from repro.seeding import derive_rng

        rng = derive_rng(13, "streaming")
        values = [rng.random() * 3 for _ in range(200)]
        whole = StreamingMeanStd()
        whole.observe_many(values)
        left, right = StreamingMeanStd(), StreamingMeanStd()
        left.observe_many(values[:70])
        right.observe_many(values[70:])
        left.merge(right)
        assert left.count == whole.count
        # Split sums reassociate the additions, so merge is tight but
        # not bit-exact (unlike sequential observe()).
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.std == pytest.approx(whole.std, abs=1e-9)

    def test_merge_empty_sides(self):
        streaming = StreamingMeanStd()
        streaming.observe_many([1.0, 2.0])
        empty = StreamingMeanStd()
        streaming.merge(empty)
        assert streaming.count == 2
        empty.merge(streaming)
        assert empty.mean == 1.5
