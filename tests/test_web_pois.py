"""Tests for the POI database and naming."""

import pytest

from repro.geo.coords import LatLon
from repro.web.grid import GeoGrid, GridCell
from repro.web.naming import business_name, city_name
from repro.web.pois import (
    CATEGORY_SPECS,
    CategorySpec,
    PoiDatabase,
    category_for_term,
)

CLEVELAND = LatLon(41.4993, -81.6944)


@pytest.fixture(scope="module")
def poi_db():
    grid = GeoGrid(1.0)
    metro = GeoGrid(8.0)
    return PoiDatabase(seed=1234, grid=grid, metro_grid=metro)


class TestNaming:
    def test_city_name_deterministic(self):
        assert city_name(GridCell(3, 4)) == city_name(GridCell(3, 4))

    def test_city_names_vary(self):
        names = {city_name(GridCell(i, 0)) for i in range(30)}
        assert len(names) > 5

    def test_business_name_deterministic(self):
        assert business_name("coffee", "Maplewood", 0) == business_name(
            "coffee", "Maplewood", 0
        )

    def test_business_name_contains_category_noun(self):
        name = business_name("coffee", "Maplewood", 1)
        assert "Coffee" in name


class TestCategorySpecs:
    def test_every_generic_local_term_has_spec(self):
        from repro.queries.local import LOCAL_GENERIC_TERMS
        from repro.web.urls import slugify

        for term in LOCAL_GENERIC_TERMS:
            assert slugify(term) in CATEGORY_SPECS, term

    def test_brand_spec_is_sparse_with_no_own_site(self):
        spec = category_for_term("Starbucks", is_brand=True)
        assert spec.own_site_rate == 0.0
        assert spec.density_per_sq_mile < CATEGORY_SPECS["school"].density_per_sq_mile

    def test_unknown_generic_term_gets_default(self):
        spec = category_for_term("Bowling Alley", is_brand=False)
        assert spec.density_per_sq_mile > 0

    def test_generic_density_exceeds_brand_density(self):
        # The density gap is what makes generic terms noisier (paper §3.1).
        generic = category_for_term("restaurant", is_brand=False)
        brand = category_for_term("kfc", is_brand=True)
        assert generic.density_per_sq_mile > brand.density_per_sq_mile


class TestPoiDatabase:
    def test_cell_generation_deterministic(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        cell = poi_db.grid.cell_of(CLEVELAND)
        a = poi_db.pois_in_cell(spec, cell)
        b = poi_db.pois_in_cell(spec, cell)
        assert [p.poi_id for p in a] == [p.poi_id for p in b]

    def test_pois_positioned_inside_their_cell(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        cell = poi_db.grid.cell_of(CLEVELAND)
        for poi in poi_db.pois_in_cell(spec, cell):
            assert poi_db.grid.cell_of(poi.location) == cell

    def test_density_drives_counts(self, poi_db):
        dense = CATEGORY_SPECS["restaurant"]
        sparse = CATEGORY_SPECS["airport"]
        dense_count = len(poi_db.pois_near(dense, CLEVELAND, 4.0))
        sparse_count = len(poi_db.pois_near(sparse, CLEVELAND, 4.0))
        assert dense_count > sparse_count

    def test_pois_near_respects_radius(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        for poi in poi_db.pois_near(spec, CLEVELAND, 2.0):
            assert poi_db.grid.distance_miles(CLEVELAND, poi.location) <= 2.0

    def test_pois_near_sorted_by_distance(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        pois = poi_db.pois_near(spec, CLEVELAND, 4.0)
        distances = [poi_db.grid.distance_miles(CLEVELAND, p.location) for p in pois]
        assert distances == sorted(distances)

    def test_limit_truncates(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        assert len(poi_db.pois_near(spec, CLEVELAND, 4.0, limit=3)) == 3

    def test_seed_changes_layout(self):
        grid = GeoGrid(1.0)
        metro = GeoGrid(8.0)
        a = PoiDatabase(1, grid, metro).pois_near(
            CATEGORY_SPECS["school"], CLEVELAND, 2.0
        )
        b = PoiDatabase(2, grid, metro).pois_near(
            CATEGORY_SPECS["school"], CLEVELAND, 2.0
        )
        assert [p.poi_id for p in a] != [p.poi_id for p in b] or [
            p.location for p in a
        ] != [p.location for p in b]

    def test_poi_ids_unique_in_radius(self, poi_db):
        spec = CATEGORY_SPECS["coffee"]
        pois = poi_db.pois_near(spec, CLEVELAND, 4.0)
        ids = [p.poi_id for p in pois]
        assert len(set(ids)) == len(ids)

    def test_quality_near_spec_mean(self, poi_db):
        spec = CATEGORY_SPECS["school"]
        pois = poi_db.pois_near(spec, CLEVELAND, 6.0)
        assert pois, "expected schools near Cleveland"
        mean = sum(p.quality for p in pois) / len(pois)
        assert abs(mean - spec.quality_mean) < 0.5

    def test_own_site_rate_zero_yields_directory_urls(self, poi_db):
        spec = CategorySpec(
            name="polling-place-test",
            density_per_sq_mile=0.5,
            own_site_rate=0.0,
        )
        pois = poi_db.pois_near(spec, CLEVELAND, 3.0)
        assert pois
        assert all(p.url.host == "citydirectory.example.com" for p in pois)
