"""The continuous audit service: store durability, drift, determinism, HTTP.

The acceptance bar from the issue: a registered audit that survives a
supervised worker kill *and* a daemon kill/resume (between cycles and
mid-cycle) must produce a byte-identical audit store and alert ledger
versus an uninterrupted run, and the same must hold for workers=1 vs 2.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.audit import (
    AlertRecord,
    AuditAPIServer,
    AuditScheduler,
    AuditService,
    AuditSpec,
    AuditStore,
    AuditStoreError,
    CusumDetector,
    DriftConfig,
    DriftMonitor,
    build_smoke_service,
    handle_path,
    sliding_mann_whitney,
)
from repro.core.experiment import StudyConfig
from repro.queries.corpus import build_corpus
from repro.supervise import KillSpec

from .conftest import TEST_SEED


def _smoke_config(seed=TEST_SEED):
    return StudyConfig.small(
        list(build_corpus())[:4], seed=seed, days=1, locations_per_granularity=2
    )


def _spec(name="aud", **overrides):
    kwargs = dict(
        config=_smoke_config(), drift=DriftConfig(baseline_cycles=1, mw_window=1)
    )
    kwargs.update(overrides)
    return AuditSpec(name=name, **kwargs)


def _run_cycles(tmp_path, label, spec, cycles, **run_kwargs):
    scheduler = AuditScheduler(str(tmp_path / label))
    audit = scheduler.register(spec)
    for _ in range(cycles):
        scheduler.run_cycle(spec.name, **run_kwargs)
    store_bytes = (tmp_path / label / f"{spec.name}.audit.jsonl").read_bytes()
    ledger = audit.store.alert_ledger_bytes()
    scheduler.close()
    return store_bytes, ledger


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Three uninterrupted cycles: the reference store and alert ledger."""
    tmp_path = tmp_path_factory.mktemp("audit-baseline")
    store_bytes, ledger = _run_cycles(tmp_path, "ref", _spec(), 3)
    assert ledger, "baseline must trip alerts or the ledger checks are vacuous"
    return store_bytes, ledger


class TestAuditStore:
    FP = {"version": 1, "who": "test"}

    def _result(self, ordinal):
        return {"cycle": ordinal, "pages": 3, "cells": {}}

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        store.append_cycle(self._result(0), [])
        store.append_cycle(self._result(1), [{"series": "x"}])
        store.close()
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        assert [c["ordinal"] for c in store.cycles] == [0, 1]
        assert store.alerts() == [{"series": "x"}]
        store.close()

    def test_torn_tail_truncated(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        store.append_cycle(self._result(0), [])
        store.close()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "cycle", "ordinal": 1, "res')  # no newline
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        assert len(store.cycles) == 1
        store.append_cycle(self._result(1), [])
        store.close()
        header, cycles = AuditStore.read(path)
        assert [c["ordinal"] for c in cycles] == [0, 1]

    def test_garbage_line_marks_durable_prefix(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        store.append_cycle(self._result(0), [])
        store.close()
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        assert len(store.cycles) == 1
        store.close()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        AuditStore.open(path, audit="a", fingerprint=self.FP).close()
        with pytest.raises(AuditStoreError, match="different audit"):
            AuditStore.open(path, audit="a", fingerprint={"version": 2})

    def test_audit_name_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        AuditStore.open(path, audit="a", fingerprint=self.FP).close()
        with pytest.raises(AuditStoreError, match="belongs to audit"):
            AuditStore.open(path, audit="b", fingerprint=self.FP)

    def test_out_of_order_cycle_refused(self, tmp_path):
        path = str(tmp_path / "a.audit.jsonl")
        store = AuditStore.open(path, audit="a", fingerprint=self.FP)
        with pytest.raises(AuditStoreError, match="out of order"):
            store.append_cycle(self._result(5), [])
        store.close()

    def test_missing_header_refused(self, tmp_path):
        path = tmp_path / "a.audit.jsonl"
        path.write_text('{"kind": "cycle", "ordinal": 0}\n')
        with pytest.raises(AuditStoreError, match="header"):
            AuditStore.read(str(path))


class TestDrift:
    def test_no_alarm_during_baseline(self):
        detector = CusumDetector(DriftConfig(baseline_cycles=3))
        assert [detector.observe(v) for v in (1.0, 1.1, 0.9)] == [None] * 3
        assert detector.baseline_mean == pytest.approx(1.0)

    def test_upward_shift_fires_high(self):
        detector = CusumDetector(DriftConfig(baseline_cycles=2, threshold=2.0))
        for value in (1.0, 1.0):
            detector.observe(value)
        fired = None
        for _ in range(10):
            fired = detector.observe(5.0)
            if fired:
                break
        assert fired is not None and fired[0] == "drift-high"
        assert detector.s_high == 0.0  # reset after alarm

    def test_downward_shift_fires_low(self):
        detector = CusumDetector(
            DriftConfig(baseline_cycles=2, threshold=2.0, min_std=0.5)
        )
        detector.observe(10.0)
        detector.observe(10.0)
        fired = None
        for _ in range(10):
            fired = detector.observe(2.0)
            if fired:
                break
        assert fired is not None and fired[0] == "drift-low"

    def test_flat_baseline_uses_min_std_floor(self):
        detector = CusumDetector(DriftConfig(baseline_cycles=2))
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.baseline_std == DriftConfig().min_std

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(baseline_cycles=0)
        with pytest.raises(ValueError):
            DriftConfig(threshold=0.0)
        with pytest.raises(ValueError):
            DriftConfig(slack=-1.0)

    def test_monitor_sorts_series_and_stamps_records(self):
        monitor = DriftMonitor("aud", DriftConfig(baseline_cycles=1, threshold=1.0))
        monitor.observe_cycle(0, {"b": 0.0, "a": 0.0})
        alerts = monitor.observe_cycle(1, {"b": 100.0, "a": 100.0})
        assert [a.series for a in alerts] == ["a", "b"]
        assert all(a.audit == "aud" and a.cycle == 1 for a in alerts)

    def test_alert_record_roundtrip(self):
        record = AlertRecord(
            audit="a",
            cycle=3,
            series="net:local:county",
            kind="drift-high",
            value=1.23456789012345,
            baseline_mean=1.0,
            baseline_std=0.1,
            statistic=5.0,
            threshold=4.0,
        )
        raw = record.to_dict()
        assert raw["value"] == round(1.23456789012345, 10)
        assert AlertRecord.from_dict(raw).series == record.series

    def test_sliding_mann_whitney_needs_two_windows(self):
        assert sliding_mann_whitney([1.0, 2.0, 3.0], window=2) is None
        result = sliding_mann_whitney(
            [1.0, 1.0, 1.0, 9.0, 9.0, 9.0], window=3
        )
        assert result is not None
        assert result.significant


class TestDeterminism:
    """Byte-identity of store and alert ledger across every failure mode."""

    def test_daemon_restart_between_cycles(self, tmp_path, baseline):
        scheduler = AuditScheduler(str(tmp_path / "restart"))
        scheduler.register(_spec())
        scheduler.run_cycle("aud")
        scheduler.run_cycle("aud")
        scheduler.close()  # daemon stops...
        scheduler = AuditScheduler(str(tmp_path / "restart"))  # ...and returns
        audit = scheduler.register(_spec())
        assert audit.next_cycle == 2
        scheduler.run_cycle("aud")
        assert (
            tmp_path / "restart" / "aud.audit.jsonl"
        ).read_bytes() == baseline[0]
        assert audit.store.alert_ledger_bytes() == baseline[1]
        scheduler.close()

    def test_mid_cycle_kill_resumes_byte_identical(self, tmp_path, baseline):
        spec = _spec(checkpoint_cycles=True)
        scheduler = AuditScheduler(str(tmp_path / "midkill"))
        scheduler.register(spec)
        scheduler.run_cycle("aud")
        store_path = tmp_path / "midkill" / "aud.audit.jsonl"
        durable_before = store_path.read_bytes()

        class Killed(RuntimeError):
            pass

        seen = {"records": 0}

        def hook(record):
            seen["records"] += 1
            if seen["records"] >= 10:
                raise Killed("daemon killed mid-cycle")

        with pytest.raises(Killed):
            scheduler.run_cycle("aud", record_hook=hook)
        scheduler.close()
        # The dead cycle left its crawl checkpoint but no store line.
        checkpoint = tmp_path / "midkill" / "aud.audit.jsonl.cycle1.ckpt"
        assert checkpoint.exists()
        assert store_path.read_bytes() == durable_before

        scheduler = AuditScheduler(str(tmp_path / "midkill"))
        scheduler.register(spec)
        scheduler.run_cycle("aud")  # resumes from the crawl checkpoint
        scheduler.run_cycle("aud")
        assert not checkpoint.exists()  # consumed once the cycle is durable
        assert store_path.read_bytes() == baseline[0]
        assert scheduler.audits["aud"].store.alert_ledger_bytes() == baseline[1]
        scheduler.close()

    def test_workers_two_byte_identical(self, tmp_path, baseline):
        store_bytes, ledger = _run_cycles(
            tmp_path, "w2", _spec(workers=2), 3
        )
        assert store_bytes == baseline[0]
        assert ledger == baseline[1]

    def test_supervised_worker_kill_byte_identical(self, tmp_path, baseline):
        spec = _spec(supervise=True, workers=2)
        store_bytes, ledger = _run_cycles(
            tmp_path,
            "killed",
            spec,
            3,
            kill_specs=(KillSpec(shard=0, ordinal=1),),
        )
        assert store_bytes == baseline[0]
        assert ledger == baseline[1]

    def test_tampered_alerts_refused_on_register(self, tmp_path, baseline):
        store_dir = tmp_path / "tampered"
        _run_cycles(tmp_path, "tampered", _spec(), 3)
        path = store_dir / "aud.audit.jsonl"
        from repro.store import reframe_line, unframe_line

        lines = path.read_text().splitlines()
        for index, line in enumerate(lines):
            payload = json.loads(unframe_line(line))
            if payload.get("kind") == "cycle" and payload["alerts"]:
                payload["alerts"] = []
                lines[index] = reframe_line(json.dumps(payload, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        scheduler = AuditScheduler(str(store_dir))
        with pytest.raises(AuditStoreError, match="does not reproduce"):
            scheduler.register(_spec())


class TestSchedulerValidation:
    def test_duplicate_register_refused(self, tmp_path):
        scheduler = AuditScheduler(str(tmp_path))
        scheduler.register(_spec())
        with pytest.raises(ValueError, match="already registered"):
            scheduler.register(_spec())
        scheduler.close()

    def test_kill_specs_require_supervised_spec(self, tmp_path):
        scheduler = AuditScheduler(str(tmp_path))
        scheduler.register(_spec())
        with pytest.raises(ValueError, match="supervised"):
            scheduler.run_cycle("aud", kill_specs=(KillSpec(shard=0, ordinal=0),))
        scheduler.close()

    def test_cycle_budget_enforced(self, tmp_path):
        scheduler = AuditScheduler(str(tmp_path))
        scheduler.register(_spec(cycles=1))
        scheduler.run_cycle("aud")
        assert scheduler.audits["aud"].done
        assert scheduler.pending() == []
        with pytest.raises(ValueError, match="budget"):
            scheduler.run_cycle("aud")
        scheduler.close()

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="name"):
            _spec(name="bad name!")
        with pytest.raises(ValueError, match="workers"):
            _spec(workers=0)
        with pytest.raises(ValueError, match="supervise"):
            _spec(checkpoint_cycles=True, supervise=True)
        with pytest.raises(ValueError, match="trace"):
            _spec(checkpoint_cycles=True, trace_cycles=True)
        with pytest.raises(ValueError, match="interval"):
            _spec(interval_minutes=0.0)

    def test_fingerprint_excludes_execution_knobs(self):
        assert _spec(workers=1).fingerprint() == _spec(
            workers=4, supervise=True
        ).fingerprint()
        assert _spec().fingerprint() != _spec(
            config=_smoke_config(seed=TEST_SEED + 1)
        ).fingerprint()

    def test_cycle_seeds_differ(self):
        spec = _spec()
        seeds = {spec.cycle_config(c).seed for c in range(4)}
        assert len(seeds) == 4
        assert spec.config.seed not in seeds


class TestServiceAndAPI:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        service = build_smoke_service(
            str(tmp_path_factory.mktemp("svc")), seed=TEST_SEED, cycles=3
        )
        service.run_once(cycles=2)
        yield service
        service.close()

    def test_status_shape(self, service):
        status = service.status()
        audit = status["audits"]["smoke"]
        assert audit["cycles"] == 2
        assert audit["budget"] == 3
        assert not audit["done"]
        assert audit["series"]
        for state in audit["series"].values():
            assert state["points"] == 2
        assert status["stats"]["cycles_completed"] == 2

    def test_render_status_mentions_series(self, service):
        text = service.render_status()
        assert "smoke: cycles 2/3" in text
        assert "net:local:" in text

    def test_routes(self, service):
        status, ctype, body = handle_path(service, "/healthz")
        assert status == 200 and json.loads(body) == {"status": "ok"}
        status, _, body = handle_path(service, "/audits")
        assert status == 200 and "smoke" in json.loads(body)["audits"]
        status, _, body = handle_path(service, "/audits/smoke")
        payload = json.loads(body)
        assert status == 200 and len(payload["cycles"]) == 2
        status, _, body = handle_path(service, "/audits/smoke/series")
        series = json.loads(body)["series"]
        assert status == 200 and all(len(v) == 2 for v in series.values())
        status, _, body = handle_path(service, "/audits/smoke/alerts")
        assert status == 200
        assert json.loads(body)["alerts"] == service._scheduler.audits[
            "smoke"
        ].store.alerts()

    def test_unknown_routes_404(self, service):
        assert handle_path(service, "/nope")[0] == 404
        assert handle_path(service, "/audits/ghost")[0] == 404
        assert handle_path(service, "/audits/smoke/bogus")[0] == 404

    def test_metrics_prometheus_text(self, service):
        status, ctype, body = handle_path(service, "/metrics")
        text = body.decode("utf-8")
        assert status == 200 and ctype.startswith("text/plain")
        assert "repro_audit_cycles_completed_total 2" in text
        assert 'repro_audit_alerts_total{audit="smoke"}' in text
        assert "# TYPE repro_audit_registered gauge" in text

    def test_http_requests_counted(self, service):
        before = service.stats.http_requests
        handle_path(service, "/healthz")
        assert service.stats.http_requests == before + 1

    def test_socket_round_trip(self, service):
        server = AuditAPIServer(service, port=0).start()
        try:
            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10
            ) as response:
                assert response.status == 200
                assert json.loads(response.read()) == {"status": "ok"}
            with urllib.request.urlopen(
                f"{server.url}/audits/smoke/series", timeout=10
            ) as response:
                assert "series" in json.loads(response.read())
        finally:
            server.close()

    def test_run_once_respects_budget(self, service):
        outcomes = service.run_once(cycles=5)  # budget caps at 3 total
        assert len(outcomes) == 1
        assert service.status()["audits"]["smoke"]["done"]
        assert service.run_once(cycles=1) == []


class TestServiceResume:
    def test_service_resumes_store(self, tmp_path):
        service = build_smoke_service(str(tmp_path), seed=TEST_SEED, cycles=2)
        first = service.run_once(cycles=1)
        service.close()
        service = build_smoke_service(str(tmp_path), seed=TEST_SEED, cycles=2)
        resumed = service.run_once(cycles=1)
        assert first[0].cycle == 0 and resumed[0].cycle == 1
        service.close()
