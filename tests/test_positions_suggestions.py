"""Tests for positional volatility and suggestion personalization."""

import pytest

from repro.core.positions import PositionalAnalysis
from repro.engine.suggestions import related_searches
from repro.queries.corpus import build_corpus
from repro.web.grid import GridCell


class TestRelatedSearches:
    @pytest.fixture(scope="class")
    def queries(self):
        corpus = build_corpus()
        return {
            "local": corpus.get("Coffee"),
            "brand": corpus.get("Starbucks"),
            "controversial": corpus.get("Gun Control"),
            "politician": corpus.get("Barack Obama"),
        }

    def test_deterministic(self, queries):
        cell = GridCell(10, 20)
        a = related_searches(queries["local"], "Ohio", cell, seed=1)
        b = related_searches(queries["local"], "Ohio", cell, seed=1)
        assert a == b

    def test_count(self, queries):
        assert len(related_searches(queries["local"], "Ohio", GridCell(1, 1), seed=1)) == 6

    def test_invalid_count(self, queries):
        with pytest.raises(ValueError):
            related_searches(queries["local"], "Ohio", GridCell(1, 1), seed=1, count=0)

    def test_local_suggestions_vary_by_state(self, queries):
        cell_a, cell_b = GridCell(10, 20), GridCell(900, 400)
        a = related_searches(queries["local"], "Ohio", cell_a, seed=1)
        b = related_searches(queries["local"], "Texas", cell_b, seed=1)
        assert set(a) != set(b)

    def test_politician_suggestions_stable_across_locations(self, queries):
        a = related_searches(queries["politician"], "Ohio", GridCell(10, 20), seed=1)
        b = related_searches(queries["politician"], "Texas", GridCell(900, 400), seed=1)
        assert a == b

    def test_local_terms_mention_term(self, queries):
        for suggestion in related_searches(queries["local"], "Ohio", GridCell(1, 2), seed=1):
            assert "coffee" in suggestion

    def test_suggestions_survive_html_round_trip(self, engine, make_request):
        from repro.core.parser import parse_serp_html
        from repro.geo.coords import LatLon

        page = engine.serve_page(make_request("Coffee", gps=LatLon(41.43, -81.67)))
        from repro.engine.render import render_page

        parsed = parse_serp_html(render_page(page))
        assert parsed.suggestions == page.suggestions
        assert len(parsed.suggestions) == 6

    def test_suggestions_stored_in_records(self, small_dataset):
        record = next(iter(small_dataset))
        assert len(record.suggestions) == 6

    def test_suggestions_round_trip_through_save(self, small_dataset, tmp_path):
        from repro.core.datastore import SerpDataset

        path = tmp_path / "with_suggestions.jsonl"
        small_dataset.save(path)
        loaded = SerpDataset.load(path)
        record = next(iter(loaded))
        assert record.suggestions == next(iter(small_dataset)).suggestions


class TestPositionalAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, small_dataset):
        return PositionalAnalysis(small_dataset)

    def test_profile_values_are_probabilities(self, analysis):
        for value in analysis.volatility_profile("local", "national"):
            assert 0.0 <= value <= 1.0

    def test_top_positions_more_stable_for_local(self, analysis):
        split = analysis.top_vs_bottom("local", "national", split=4)
        assert split["top"] < split["bottom"]

    def test_politician_pages_frozen(self, analysis):
        profile = analysis.volatility_profile("politician", "county")
        assert sum(profile) / len(profile) < 0.1

    def test_noise_profile_below_personalization(self, analysis):
        noise = analysis.volatility_profile("local", "national", noise=True)
        personalization = analysis.volatility_profile("local", "national")
        assert sum(noise) < sum(personalization)

    def test_depth_truncates(self, analysis):
        assert len(analysis.volatility_profile("local", "county", depth=5)) == 5

    def test_unknown_cell_raises(self, analysis):
        with pytest.raises(ValueError):
            analysis.volatility_profile("local", "continental")

    def test_render_profile(self, analysis):
        text = analysis.render_profile("local", "national")
        assert "rank  1" in text

    def test_suggestion_overlap_has_zero_noise(self, analysis):
        # Suggestions are deterministic per location: treatment/control
        # strips are identical.
        noise = analysis.suggestion_overlap("local", "county", noise=True)
        assert noise.mean == 1.0

    def test_suggestions_personalized_for_local(self, analysis):
        overlap = analysis.suggestion_overlap("local", "national")
        assert overlap.mean < 1.0

    def test_suggestions_stable_for_politicians(self, analysis):
        overlap = analysis.suggestion_overlap("politician", "national")
        assert overlap.mean > 0.95

    def test_suggestion_overlap_drops_with_distance(self, analysis):
        county = analysis.suggestion_overlap("local", "county").mean
        national = analysis.suggestion_overlap("local", "national").mean
        assert national <= county
