"""Tests for the comparison metrics (paper §2.3)."""

import pytest

from repro.core.metrics import damerau_levenshtein, edit_distance, jaccard_index


class TestJaccard:
    def test_identical_lists(self):
        assert jaccard_index(["a", "b"], ["a", "b"]) == 1.0

    def test_order_ignored(self):
        # Paper: Jaccard of 1 means same results, "although not
        # necessarily in the same order".
        assert jaccard_index(["a", "b", "c"], ["c", "b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard_index(["a"], ["b"]) == 0.0

    def test_partial_overlap(self):
        assert jaccard_index(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_both_empty_is_identical(self):
        assert jaccard_index([], []) == 1.0

    def test_one_empty(self):
        assert jaccard_index(["a"], []) == 0.0

    def test_duplicates_collapse(self):
        assert jaccard_index(["a", "a"], ["a"]) == 1.0

    def test_symmetry(self):
        a, b = ["a", "b", "c"], ["b", "d"]
        assert jaccard_index(a, b) == jaccard_index(b, a)

    def test_bounded(self):
        assert 0.0 <= jaccard_index(["a", "b"], ["b", "c", "d"]) <= 1.0


class TestEditDistance:
    def test_identical(self):
        assert edit_distance(["a", "b", "c"], ["a", "b", "c"]) == 0

    def test_empty_vs_empty(self):
        assert edit_distance([], []) == 0

    def test_insertion(self):
        assert edit_distance(["a", "b"], ["a", "b", "c"]) == 1

    def test_deletion(self):
        assert edit_distance(["a", "b", "c"], ["a", "c"]) == 1

    def test_substitution(self):
        assert edit_distance(["a", "b", "c"], ["a", "x", "c"]) == 1

    def test_adjacent_swap_costs_one(self):
        # The paper counts "swaps" as single operations.
        assert damerau_levenshtein(["a", "b", "c"], ["a", "c", "b"]) == 1

    def test_pure_levenshtein_would_cost_two(self):
        # Sanity: the transposition rule is actually engaged.
        assert damerau_levenshtein(["a", "b"], ["b", "a"]) == 1

    def test_empty_against_full(self):
        assert edit_distance([], ["a", "b", "c"]) == 3
        assert edit_distance(["a", "b", "c"], []) == 3

    def test_completely_different(self):
        assert edit_distance(["a", "b"], ["x", "y"]) == 2

    def test_symmetry(self):
        a = ["a", "b", "c", "d"]
        b = ["b", "a", "d", "e"]
        assert edit_distance(a, b) == edit_distance(b, a)

    def test_triangle_inequality_spot_check(self):
        a = ["a", "b", "c"]
        b = ["b", "c", "d"]
        c = ["d", "e", "f"]
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    def test_bounded_by_longer_length(self):
        a = ["a", "b", "c", "d", "e"]
        b = ["v", "w", "x", "y", "z", "q"]
        assert edit_distance(a, b) <= max(len(a), len(b))

    def test_rotation_example(self):
        # Moving the head to the tail of a 4-list costs 2 ops
        # (delete + insert), not 4.
        assert edit_distance(["a", "b", "c", "d"], ["b", "c", "d", "a"]) == 2

    def test_known_dp_case(self):
        assert edit_distance(list("kitten"), list("sitting")) == 3

    def test_alias(self):
        assert edit_distance(["a"], ["b"]) == damerau_levenshtein(["a"], ["b"])
