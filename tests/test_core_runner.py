"""Tests for the study configuration and runner (methodology wiring)."""

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import MINUTES_PER_DAY, Study
from repro.queries.corpus import build_corpus
from repro.queries.model import Query, QueryCategory


def _mini_queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


class TestStudyConfig:
    def test_defaults_match_paper(self):
        config = StudyConfig()
        assert len(config.queries) == 240
        assert config.days == 5
        assert config.copies_per_location == 2
        assert config.machine_count == 44
        assert config.wait_between_queries_minutes == 11.0
        assert config.queries_per_day_block == 120

    def test_block_must_fit_in_a_day(self):
        with pytest.raises(ValueError):
            StudyConfig(queries_per_day_block=200, wait_between_queries_minutes=11.0)

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            StudyConfig(days=0)

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            StudyConfig(machine_count=0)

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            StudyConfig(queries=[])

    def test_small_preset_keeps_methodology(self):
        config = StudyConfig.small(_mini_queries())
        assert config.copies_per_location == 2
        assert config.pin_datacenter
        assert config.clear_cookies

    def test_with_overrides(self):
        config = StudyConfig.small(_mini_queries()).with_overrides(days=1)
        assert config.days == 1


class TestStudyWiring:
    @pytest.fixture(scope="class")
    def study(self):
        return Study(StudyConfig.small(_mini_queries(), days=1, locations_per_granularity=3))

    def test_location_counts(self, study):
        assert study.locations.total() == 9

    def test_treatment_count(self, study):
        # locations x copies
        assert len(study.treatments) == 9 * 2

    def test_browsers_have_geolocation_set(self, study):
        for treatment in study.treatments:
            assert (
                treatment.browser.geolocation.get_current_position()
                == treatment.region.center
            )

    def test_machines_spread_round_robin(self, study):
        used = {t.browser.machine.hostname for t in study.treatments}
        assert len(used) == min(len(study.treatments), len(study.fleet))

    def test_dns_pinned_to_one_datacenter(self, study):
        from repro.engine.datacenters import SEARCH_HOSTNAME

        results = {
            study.resolver.resolve(SEARCH_HOSTNAME, query_id=i) for i in range(20)
        }
        assert len(results) == 1

    def test_unpinned_config_rotates(self):
        study = Study(
            StudyConfig.small(_mini_queries(), days=1, locations_per_granularity=3)
            .with_overrides(pin_datacenter=False)
        )
        from repro.engine.datacenters import SEARCH_HOSTNAME

        results = {
            study.resolver.resolve(SEARCH_HOSTNAME, query_id=i) for i in range(30)
        }
        assert len(results) > 1

    def test_regions_by_name_covers_all_locations(self, study):
        regions = study.regions_by_name()
        assert len(regions) == study.locations.total()


class TestStudyRun:
    def test_run_produces_complete_dataset(self):
        config = StudyConfig.small(_mini_queries(), days=2, locations_per_granularity=3)
        study = Study(config)
        dataset = study.run()
        assert len(dataset) == 3 * 9 * 2 * 2
        assert not study.failures

    def test_day_blocks_schedule_beyond_one_block(self):
        corpus = build_corpus()
        queries = corpus.by_category(QueryCategory.LOCAL)[:4]
        config = StudyConfig.small(queries, days=1, locations_per_granularity=2)
        config = config.with_overrides(queries_per_day_block=2)
        study = Study(config)
        dataset = study.run()
        # Two blocks of two queries; all four still collected with day 0.
        assert len(dataset.queries()) == 4
        assert dataset.days() == [0]

    def test_single_machine_study_gets_rate_limited(self):
        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("School")], days=1, locations_per_granularity=8
        ).with_overrides(machine_count=1, max_retries=0)
        study = Study(config)
        study.run()
        # 24 locations x 2 copies from one IP in one instant: the engine's
        # 20/minute budget must trip — this is why the paper used 44
        # machines.
        assert study.failures
        assert study.stats.captchas > 0

    def test_retries_recover_transient_rate_limiting(self):
        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("School")], days=1, locations_per_granularity=8
        ).with_overrides(machine_count=1, max_retries=3)
        study = Study(config)
        dataset = study.run()
        # Backoff pushes retries past the rolling window, so the crawl
        # completes despite the single IP.
        assert not study.failures
        assert study.stats.retries > 0
        assert len(dataset) == 24 * 2

    def test_stats_track_requests_and_pages(self):
        config = StudyConfig.small(_mini_queries(), days=1, locations_per_granularity=2)
        study = Study(config)
        dataset = study.run()
        assert study.stats.pages == len(dataset)
        assert study.stats.requests == study.stats.pages  # no retries needed
        assert study.stats.captchas == 0

    def test_run_single_query(self):
        config = StudyConfig.small(_mini_queries(), days=1, locations_per_granularity=2)
        study = Study(config)
        rows = study.run_single_query(config.queries[0])
        assert len(rows) == 6 * 2

    def test_lockstep_timestamps(self):
        # All treatments of one round share one timestamp; rounds are
        # spaced by the configured wait.
        config = StudyConfig.small(_mini_queries(), days=1, locations_per_granularity=2)
        study = Study(config)
        seen = []

        original = study._run_round

        def spy(dataset, scheduled):
            seen.append((scheduled.query.text, scheduled.timestamp))
            return original(dataset, scheduled)

        study._run_round = spy
        study.run()
        timestamps = [t for _, t in seen]
        assert timestamps == sorted(timestamps)
        spacing = timestamps[1] - timestamps[0]
        assert spacing == config.wait_between_queries_minutes

    def test_days_offset_by_minutes_per_day(self):
        config = StudyConfig.small(_mini_queries(), days=2, locations_per_granularity=2)
        study = Study(config)
        seen = []
        original = study._run_round

        def spy(dataset, scheduled):
            seen.append((scheduled.day_offset, scheduled.timestamp))
            return original(dataset, scheduled)

        study._run_round = spy
        study.run()
        day0 = [t for d, t in seen if d == 0]
        day1 = [t for d, t in seen if d == 1]
        assert min(day1) - min(day0) == MINUTES_PER_DAY
