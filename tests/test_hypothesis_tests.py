"""Tests for Mann–Whitney U and bootstrap confidence intervals."""

import pytest

from repro.seeding import derive_rng
from repro.stats.hypothesis_tests import bootstrap_ci, mann_whitney_u


class TestMannWhitney:
    def test_clearly_shifted_samples_significant(self):
        rng = derive_rng(1, "mw")
        a = [rng.gauss(10.0, 1.0) for _ in range(60)]
        b = [rng.gauss(5.0, 1.0) for _ in range(60)]
        result = mann_whitney_u(a, b)
        assert result.significant
        assert result.p_value < 1e-6

    def test_same_distribution_not_significant(self):
        rng = derive_rng(2, "mw")
        a = [rng.gauss(5.0, 1.0) for _ in range(80)]
        b = [rng.gauss(5.0, 1.0) for _ in range(80)]
        assert mann_whitney_u(a, b).p_value > 0.01

    def test_identical_constant_samples(self):
        result = mann_whitney_u([3.0] * 10, [3.0] * 10)
        assert result.p_value == 1.0
        assert not result.significant

    def test_symmetry_of_pvalue(self):
        a = [1.0, 2.0, 3.0, 4.0, 10.0]
        b = [2.0, 3.0, 5.0, 6.0, 7.0]
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value
        )

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_handles_heavy_ties(self):
        # Edit distances are small integers: lots of ties.
        a = [0.0, 0.0, 1.0, 1.0, 2.0] * 20
        b = [0.0, 1.0, 1.0, 2.0, 2.0] * 20
        result = mann_whitney_u(a, b)
        assert 0.0 < result.p_value <= 1.0

    def test_counts_recorded(self):
        result = mann_whitney_u([1.0, 2.0], [3.0, 4.0, 5.0])
        assert result.n_a == 2
        assert result.n_b == 3

    def test_effect_size_direction(self):
        assert mann_whitney_u([10, 11, 12], [1, 2, 3]).effect_size == 1.0
        assert mann_whitney_u([1, 2, 3], [10, 11, 12]).effect_size == -1.0

    def test_effect_size_zero_for_identical(self):
        assert mann_whitney_u([5.0] * 8, [5.0] * 8).effect_size == 0.0

    def test_effect_size_bounded(self):
        from repro.seeding import derive_rng

        rng = derive_rng(6, "es")
        a = [rng.gauss(0, 1) for _ in range(30)]
        b = [rng.gauss(0.5, 1) for _ in range(30)]
        assert -1.0 <= mann_whitney_u(a, b).effect_size <= 1.0


class TestBootstrapCI:
    def test_interval_contains_sample_mean(self):
        rng = derive_rng(3, "boot")
        values = [rng.gauss(7.0, 2.0) for _ in range(100)]
        ci = bootstrap_ci(values, seed=1)
        assert ci.low <= ci.mean <= ci.high

    def test_deterministic_per_seed(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        a = bootstrap_ci(values, seed=9)
        b = bootstrap_ci(values, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_different_seed_changes_interval(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 7.0, 4.0]
        a = bootstrap_ci(values, seed=1, resamples=500)
        b = bootstrap_ci(values, seed=2, resamples=500)
        assert (a.low, a.high) != (b.low, b.high)

    def test_narrower_at_lower_confidence(self):
        rng = derive_rng(4, "boot")
        values = [rng.gauss(0.0, 1.0) for _ in range(50)]
        wide = bootstrap_ci(values, confidence=0.99, seed=1)
        narrow = bootstrap_ci(values, confidence=0.80, seed=1)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_constant_sample_collapses(self):
        ci = bootstrap_ci([4.0] * 20, seed=1)
        assert ci.low == ci.high == 4.0

    def test_contains_helper(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0], seed=1)
        assert ci.contains(ci.mean)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=1)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)

    def test_coverage_sanity(self):
        # ~95% of CIs from repeated draws of a known distribution should
        # contain the true mean; check loosely over 40 trials.
        covered = 0
        trials = 40
        for trial in range(trials):
            rng = derive_rng(5, "coverage", trial)
            values = [rng.gauss(3.0, 1.0) for _ in range(40)]
            if bootstrap_ci(values, seed=trial, resamples=400).contains(3.0):
                covered += 1
        assert covered >= trials * 0.8
