"""Tests for granularities, study-location selection, demographics."""

import pytest

from repro.geo.demographics import (
    DEMOGRAPHIC_FEATURES,
    DemographicProfile,
    demographic_profile,
)
from repro.geo.granularity import Granularity, select_study_locations
from repro.geo.regions import RegionKind
from repro.geo.usa import us_state


class TestGranularity:
    def test_order_small_to_large(self):
        assert Granularity.order() == [
            Granularity.COUNTY,
            Granularity.STATE,
            Granularity.NATIONAL,
        ]

    def test_labels_match_paper_axes(self):
        assert Granularity.COUNTY.label == "County (Cuyahoga)"
        assert Granularity.STATE.label == "State (Ohio)"
        assert Granularity.NATIONAL.label == "National (USA)"


class TestSelectStudyLocations:
    def test_paper_counts(self):
        locations = select_study_locations(42)
        assert len(locations.locations(Granularity.NATIONAL)) == 22
        assert len(locations.locations(Granularity.STATE)) == 22
        assert len(locations.locations(Granularity.COUNTY)) == 15
        assert locations.total() == 59  # the abstract's "59 GPS coordinates"

    def test_ohio_always_in_national_set(self):
        locations = select_study_locations(42)
        names = {r.name for r in locations.locations(Granularity.NATIONAL)}
        assert "Ohio" in names

    def test_cuyahoga_always_in_state_set(self):
        locations = select_study_locations(42)
        names = {r.name for r in locations.locations(Granularity.STATE)}
        assert "Cuyahoga" in names

    def test_deterministic_per_seed(self):
        a = select_study_locations(42)
        b = select_study_locations(42)
        for granularity in Granularity.order():
            assert [r.name for r in a.locations(granularity)] == [
                r.name for r in b.locations(granularity)
            ]

    def test_different_seeds_differ(self):
        a = select_study_locations(42)
        b = select_study_locations(43)
        assert {r.name for r in a.locations(Granularity.NATIONAL)} != {
            r.name for r in b.locations(Granularity.NATIONAL)
        }

    def test_kinds_match_granularity(self):
        locations = select_study_locations(42)
        assert all(
            r.kind is RegionKind.STATE
            for r in locations.locations(Granularity.NATIONAL)
        )
        assert all(
            r.kind is RegionKind.COUNTY for r in locations.locations(Granularity.STATE)
        )
        assert all(
            r.kind is RegionKind.DISTRICT
            for r in locations.locations(Granularity.COUNTY)
        )

    def test_distance_scales_match_paper(self):
        locations = select_study_locations(42)
        county = locations.mean_pairwise_distance_miles(Granularity.COUNTY)
        state = locations.mean_pairwise_distance_miles(Granularity.STATE)
        national = locations.mean_pairwise_distance_miles(Granularity.NATIONAL)
        assert county < 15
        assert 50 < state < 200
        assert national > 500
        assert county < state < national

    def test_oversampling_rejected(self):
        with pytest.raises(ValueError):
            select_study_locations(42, state_count=60)

    def test_all_locations_ordered_small_scale_first(self):
        locations = select_study_locations(42)
        kinds = [r.kind for r in locations.all_locations()]
        first_county = kinds.index(RegionKind.DISTRICT)
        first_national = kinds.index(RegionKind.STATE)
        assert first_county < first_national


class TestDemographics:
    def test_twenty_five_features(self):
        assert len(DEMOGRAPHIC_FEATURES) == 25

    def test_profile_has_every_feature(self):
        profile = demographic_profile(us_state("Ohio"))
        for feature in DEMOGRAPHIC_FEATURES:
            assert isinstance(profile[feature], float)

    def test_profile_deterministic(self):
        a = demographic_profile(us_state("Ohio"))
        b = demographic_profile(us_state("Ohio"))
        assert a.vector() == b.vector()

    def test_profiles_differ_between_regions(self):
        assert demographic_profile(us_state("Ohio")).vector() != demographic_profile(
            us_state("Texas")
        ).vector()

    def test_ethnic_shares_sum_to_one(self):
        profile = demographic_profile(us_state("Ohio"))
        total = (
            profile["white_share"]
            + profile["black_share"]
            + profile["hispanic_share"]
            + profile["asian_share"]
            + profile["other_ethnicity_share"]
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_rates_are_probabilities(self):
        profile = demographic_profile(us_state("Texas"))
        for feature in (
            "poverty_rate",
            "unemployment_rate",
            "high_school_attainment",
            "bachelors_attainment",
            "english_fluency",
            "homeownership_rate",
            "internet_access_rate",
        ):
            assert 0.0 <= profile[feature] <= 1.0, feature

    def test_poverty_anticorrelates_with_income(self):
        # Across many regions the constraint built into the generator
        # should be visible as a negative correlation.
        from repro.geo.usa import us_state_regions
        from repro.stats.correlation import pearson

        profiles = [demographic_profile(r) for r in us_state_regions()]
        incomes = [p["median_income"] for p in profiles]
        poverty = [p["poverty_rate"] for p in profiles]
        assert pearson(incomes, poverty) < -0.3

    def test_missing_feature_rejected(self):
        with pytest.raises(ValueError):
            DemographicProfile(region_name="x", features={"population": 1.0})

    def test_vector_order_is_canonical(self):
        profile = demographic_profile(us_state("Iowa"))
        vector = profile.vector()
        assert vector[0] == profile["population"]
        assert len(vector) == 25
