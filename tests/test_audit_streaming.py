"""Streaming-vs-batch parity for the audit service's incremental stats.

The contract under test (documented in ``repro.audit.streaming``):
feeding a study's sink stream through :class:`StreamingComparisons`
produces *the same pair stream, in the same order*, as the batch
iterators over the finished dataset — so means are bit-identical and
standard deviations agree to Welford-vs-two-pass tolerance.
"""

from __future__ import annotations

import pytest

from repro.audit.streaming import StreamingComparisons
from repro.core.comparisons import iter_noise_pairs, iter_treatment_pairs
from repro.core.experiment import StudyConfig
from repro.core.personalization import PersonalizationAnalysis
from repro.core.runner import Study
from repro.faults.plan import FaultPlan
from repro.queries.corpus import build_corpus
from repro.stats.summaries import summarize

from .conftest import TEST_SEED


def _run_streaming(config):
    study = Study(config)
    streaming = StreamingComparisons()
    dataset = study.run(sink=streaming.observe)
    streaming.finish()
    return dataset, streaming


def _batch_cells(dataset, iterator):
    cells = {}
    for pair in iterator(dataset):
        jaccards, edits = cells.setdefault(
            (pair.category, pair.granularity), ([], [])
        )
        jaccards.append(pair.jaccard)
        edits.append(float(pair.edit))
    return cells


@pytest.fixture(scope="module")
def parity_run():
    config = StudyConfig.small(
        list(build_corpus())[:6],
        seed=TEST_SEED,
        days=2,
        locations_per_granularity=3,
    )
    return _run_streaming(config)


class TestStreamingParity:
    def test_treatment_cells_match_batch(self, parity_run):
        dataset, streaming = parity_run
        batch = _batch_cells(dataset, iter_treatment_pairs)
        assert set(streaming.treatment) == set(batch)
        for key, cell in streaming.treatment.items():
            jaccards, edits = batch[key]
            assert cell.pairs == len(jaccards)
            # Same pairs, same order, same summation order: bit-identical.
            assert cell.jaccard.mean == summarize(jaccards).mean
            assert cell.edit.mean == summarize(edits).mean
            assert cell.jaccard.std == pytest.approx(
                summarize(jaccards).std, abs=1e-9
            )
            assert cell.edit.std == pytest.approx(summarize(edits).std, abs=1e-9)

    def test_noise_cells_match_batch(self, parity_run):
        dataset, streaming = parity_run
        batch = _batch_cells(dataset, iter_noise_pairs)
        assert set(streaming.noise) == set(batch)
        for key, cell in streaming.noise.items():
            jaccards, edits = batch[key]
            assert cell.pairs == len(jaccards)
            assert cell.jaccard.mean == summarize(jaccards).mean
            assert cell.edit.mean == summarize(edits).mean

    def test_net_edit_matches_personalization_analysis(self, parity_run):
        dataset, streaming = parity_run
        analysis = PersonalizationAnalysis(dataset)
        checked = 0
        for category, granularity in streaming.treatment:
            net = streaming.net_edit(category, granularity)
            if net is None:
                continue
            assert net == pytest.approx(
                analysis.net_edit(category, granularity), abs=1e-12
            )
            checked += 1
        assert checked > 0

    def test_pair_count_matches_batch(self, parity_run):
        dataset, streaming = parity_run
        batch_pairs = sum(1 for _ in iter_treatment_pairs(dataset)) + sum(
            1 for _ in iter_noise_pairs(dataset)
        )
        assert streaming.pairs == batch_pairs
        assert streaming.records == len(dataset)

    def test_parity_survives_parallel_sink(self):
        config = StudyConfig.small(
            list(build_corpus())[:4],
            seed=TEST_SEED,
            days=1,
            locations_per_granularity=2,
        )
        sequential = StreamingComparisons()
        Study(config).run(sink=sequential.observe)
        sequential.finish()
        parallel = StreamingComparisons()
        Study(config).run(workers=2, sink=parallel.observe)
        parallel.finish()
        assert set(sequential.treatment) == set(parallel.treatment)
        for key, cell in sequential.treatment.items():
            other = parallel.treatment[key]
            assert cell.pairs == other.pairs
            assert cell.jaccard.mean == other.jaccard.mean
            assert cell.edit.mean == other.edit.mean

    def test_parity_with_faulty_crawl(self):
        """Lost records degrade streaming exactly like the batch iterators."""
        config = StudyConfig.small(
            list(build_corpus())[:4],
            seed=TEST_SEED,
            days=1,
            locations_per_granularity=2,
        ).with_overrides(fault_plan=FaultPlan.named("chaos", seed=7))
        dataset, streaming = _run_streaming(config)
        assert streaming.records == len(dataset)
        batch = _batch_cells(dataset, iter_treatment_pairs)
        for key, cell in streaming.treatment.items():
            jaccards, _ = batch[key]
            assert cell.pairs == len(jaccards)
            assert cell.jaccard.mean == summarize(jaccards).mean
        batch_noise = _batch_cells(dataset, iter_noise_pairs)
        assert set(streaming.noise) == set(batch_noise)
        for key, cell in streaming.noise.items():
            jaccards, _ = batch_noise[key]
            assert cell.pairs == len(jaccards)


class TestStreamingLifecycle:
    def test_observe_after_finish_rejected(self, parity_run):
        _, streaming = parity_run
        with pytest.raises(RuntimeError):
            streaming.observe(None)

    def test_finish_idempotent(self):
        streaming = StreamingComparisons()
        streaming.finish()
        streaming.finish()
        assert streaming.pairs == 0

    def test_empty_cells_report_none(self):
        streaming = StreamingComparisons()
        streaming.finish()
        assert streaming.net_edit("local", "county") is None
        assert streaming.noise_floor_edit("local", "county") is None
        assert streaming.cells() == []
