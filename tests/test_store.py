"""repro.store: framing, damage classification, disk faults, fsck, compaction.

The contract under test (the PR's acceptance bar): every durable
journal is CRC32-framed; torn tails are scavenged transparently while
interior corruption is *detected* and named, never silently absorbed;
``fsck --repair`` recovers every intact record byte-for-byte; the
disk-fault injector is deterministic; and audit-store compaction
changes no observable byte — alert ledger, drift replay, and future
cycle lines are identical with and without retention.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.audit import AuditScheduler, AuditSpec, AuditStore, DriftConfig
from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.experiment import StudyConfig
from repro.obs.events import EventLog, read_events, validate_events
from repro.queries.corpus import build_corpus
from repro.store import (
    REAL_OPS,
    STORE_STATS,
    DiskFault,
    DiskFaultPlan,
    FaultyFileOps,
    RecordLogWriter,
    StoreCorruption,
    build_store_registry,
    frame_record,
    fsck_path,
    read_log,
    reframe_line,
    scan_bytes,
    scan_log,
    segment_paths,
    unframe_line,
    use_fileops,
)

from .conftest import TEST_SEED


def _dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _write_log(path, payloads, **kwargs):
    log = RecordLogWriter.create(path, **kwargs)
    for payload in payloads:
        log.append(_dumps(payload))
    log.commit()
    log.close()


def _rows(count):
    return [{"kind": "row", "i": i} for i in range(count)]


def _flip_payload_digit(data: bytes, line_index: int) -> bytes:
    """Flip the low bit of a digit inside one framed line's payload.

    Digits stay digits under a low-bit flip, so the damaged payload
    still parses as JSON — exactly the corruption unframed JSONL
    would silently accept.
    """
    lines = data.split(b"\n")
    line = bytearray(lines[line_index])
    header_len = len(b"~F1 ") + 8 + 1 + 8 + 1
    for i in range(header_len, len(line)):
        if chr(line[i]).isdigit():
            line[i] ^= 1
            break
    else:
        raise AssertionError("no digit found in payload")
    json.loads(bytes(line[header_len:]))  # still valid JSON
    lines[line_index] = bytes(line)
    return b"\n".join(lines)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_frame_preserves_payload_bytes(self):
        payload = _dumps({"b": 2, "a": [1, None]}).encode("utf-8")
        report = scan_bytes(frame_record(payload))
        assert report.clean
        [record] = report.records
        assert record.payload == payload
        assert record.framed

    def test_unframe_reframe_roundtrip(self):
        text = _dumps({"kind": "cycle", "ordinal": 3})
        assert unframe_line(reframe_line(text)) == text

    def test_unframe_passes_legacy_lines_through(self):
        assert unframe_line('{"a": 1}\n') == '{"a": 1}'

    def test_payload_may_not_contain_newlines(self):
        with pytest.raises(ValueError, match="single line"):
            frame_record(b'{"a":\n1}')

    def test_legacy_lines_coexist_with_framed(self, tmp_path):
        path = str(tmp_path / "mixed.log")
        _write_log(path, _rows(2))
        with open(path, "ab") as handle:
            handle.write(_dumps({"kind": "row", "i": 2}).encode("utf-8") + b"\n")
        rows = [obj for obj, _ in read_log(path)]
        assert [row["i"] for row in rows] == [0, 1, 2]
        assert scan_log(path).legacy_records == 1


# ---------------------------------------------------------------------------
# Damage classification: torn tail vs interior corruption
# ---------------------------------------------------------------------------


class TestDamageClassification:
    def test_torn_tail_is_benign(self, tmp_path):
        path = str(tmp_path / "torn.log")
        _write_log(path, _rows(3))
        with open(path, "ab") as handle:
            handle.write(b"~F1 000000")  # write in flight at death
        STORE_STATS.reset()
        rows = read_log(path)
        assert [obj["i"] for obj, _ in rows] == [0, 1, 2]
        assert STORE_STATS.torn_tails_recovered == 1
        assert STORE_STATS.torn_bytes_dropped == 10

    def test_trailing_garbage_line_is_torn_not_corrupt(self, tmp_path):
        path = str(tmp_path / "tail.log")
        _write_log(path, _rows(2))
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        report = scan_log(path)
        assert report.torn is not None
        assert not report.corrupt
        assert len(read_log(path)) == 2

    def test_interior_corruption_raises_with_coordinates(self, tmp_path):
        path = str(tmp_path / "rot.log")
        _write_log(path, _rows(4))
        data = open(path, "rb").read()
        lines = data.split(b"\n")
        line = bytearray(lines[1])
        line[len(line) // 2] ^= 0x40
        lines[1] = bytes(line)
        open(path, "wb").write(b"\n".join(lines))
        with pytest.raises(StoreCorruption) as excinfo:
            read_log(path)
        assert excinfo.value.record_index == 1
        assert excinfo.value.offset == scan_log(path).corrupt[0].start
        assert "fsck" in str(excinfo.value)

    def test_bit_flip_that_still_parses_as_json_is_detected(self, tmp_path):
        # The headline framing property: a one-bit flip that leaves the
        # payload syntactically valid JSON — invisible to a plain JSONL
        # reader — still fails its checksum.
        path = str(tmp_path / "flip.log")
        _write_log(path, _rows(4))
        flipped = _flip_payload_digit(open(path, "rb").read(), 2)
        open(path, "wb").write(flipped)
        report = scan_log(path)
        assert [region.reason for region in report.corrupt] == ["checksum mismatch"]
        assert report.corrupt[0].record_index == 2
        with pytest.raises(StoreCorruption):
            read_log(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "blank.log")
        _write_log(path, _rows(2))
        data = open(path, "rb").read().replace(b"\n", b"\n\n", 1)
        open(path, "wb").write(data)
        assert len(read_log(path)) == 2


# ---------------------------------------------------------------------------
# Rotation
# ---------------------------------------------------------------------------


class TestRotation:
    def test_rotation_keeps_every_record_in_order(self, tmp_path):
        path = str(tmp_path / "rot.log")
        _write_log(path, _rows(40), segment_bytes=256)
        segments = segment_paths(path)
        assert len(segments) > 2
        assert segments[-1] == path
        assert segments[:-1] == sorted(segments[:-1])
        seen = []
        for segment in segments:
            seen.extend(obj["i"] for obj, _ in read_log(segment))
        assert seen == list(range(40))

    def test_fsck_repairs_a_rotated_segment(self, tmp_path):
        path = str(tmp_path / "rot.log")
        _write_log(path, _rows(40), segment_bytes=256)
        victim = segment_paths(path)[0]
        flipped = _flip_payload_digit(open(victim, "rb").read(), 1)
        open(victim, "wb").write(flipped)
        assert fsck_path(path).exit_code == 1
        report = fsck_path(path, repair=True)
        assert report.exit_code == 0
        assert sum(1 for s in report.segments if s.repaired) == 1
        assert fsck_path(path).exit_code == 0


# ---------------------------------------------------------------------------
# fsck / scavenge
# ---------------------------------------------------------------------------


class TestFsck:
    def _damaged(self, tmp_path):
        path = str(tmp_path / "damaged.log")
        _write_log(path, _rows(5))
        data = open(path, "rb").read()
        data = _flip_payload_digit(data, 2)
        open(path, "wb").write(data + b"~F1 torn")
        return path

    def test_exit_one_until_repaired(self, tmp_path):
        path = self._damaged(tmp_path)
        report = fsck_path(path)
        assert report.exit_code == 1
        assert report.corrupt_records == 1
        assert report.truncated

    def test_repair_preserves_valid_records_byte_for_byte(self, tmp_path):
        path = self._damaged(tmp_path)
        before = {record.line for record in scan_log(path).records}
        report = fsck_path(path, repair=True)
        assert report.exit_code == 0
        after = open(path, "rb").read()
        assert {record.line for record in scan_log(path).records} == before
        assert len(after) == sum(len(line) for line in before)
        rows = [obj["i"] for obj, _ in read_log(path)]
        assert rows == [0, 1, 3, 4]  # record 2 was scavenged around

    def test_torn_only_log_exits_zero(self, tmp_path):
        path = str(tmp_path / "torn.log")
        _write_log(path, _rows(3))
        with open(path, "ab") as handle:
            handle.write(b"~F1 0000")
        report = fsck_path(path)
        assert report.exit_code == 0
        assert report.truncated

    def test_counts_surface_in_store_registry(self, tmp_path):
        STORE_STATS.reset()
        path = self._damaged(tmp_path)
        fsck_path(path, repair=True)
        metrics = build_store_registry().snapshot()["metrics"]
        assert metrics["repro_store_repairs"]["value"] == 1
        assert metrics["repro_store_records_scavenged"]["value"] == 4
        assert metrics["repro_store_corrupt_records_detected"]["value"] == 1

    def test_disk_stats_surface_in_store_registry(self, tmp_path):
        plan = DiskFaultPlan(seed=3, enospc_rate=1.0)
        ops = FaultyFileOps(plan)
        handle = REAL_OPS.open_trunc(str(tmp_path / "doomed.log"))
        with pytest.raises(DiskFault):
            ops.write(handle, b"doomed")
        REAL_OPS.close(handle)
        ops.simulate_crash()
        metrics = build_store_registry(disk_stats=ops.stats).snapshot()["metrics"]
        assert metrics["repro_store_disk_crashes"]["value"] == 1
        assert metrics["repro_store_disk_faults_injected"]["value"] == {
            "enospc": 1
        }


# ---------------------------------------------------------------------------
# Disk-fault injection
# ---------------------------------------------------------------------------


class TestFaultyFileOps:
    def test_enospc_lands_no_bytes(self, tmp_path):
        path = str(tmp_path / "full.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=1, enospc_rate=1.0))
        log = RecordLogWriter.create(path, ops=ops)
        with pytest.raises(DiskFault, match="enospc"):
            log.append(_dumps({"i": 0}))
        ops.simulate_crash()
        # create() fsynced the directory, so the empty journal survives
        # — but the refused write left nothing behind.
        assert os.path.exists(path)
        assert os.path.getsize(path) == 0

    def test_torn_write_leaves_a_strict_prefix(self, tmp_path):
        path = str(tmp_path / "torn.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=2, torn_write_rate=1.0))
        log = RecordLogWriter.create(path, ops=ops)
        with pytest.raises(DiskFault, match="torn-write"):
            log.append(_dumps({"kind": "row", "i": 0}))
        framed = frame_record(_dumps({"kind": "row", "i": 0}).encode("utf-8"))
        assert os.path.getsize(path) < len(framed)

    def test_dropped_fsync_loses_the_tail_on_crash(self, tmp_path):
        path = str(tmp_path / "lying.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=3, fsync_drop_rate=1.0))
        log = RecordLogWriter.create(path, ops=ops)
        log.append(_dumps({"i": 0}))
        log.commit()  # fsync silently dropped
        log.close()
        assert os.path.getsize(path) > 0
        ops.simulate_crash()
        assert os.path.getsize(path) == 0

    def test_honest_fsync_survives_crash(self, tmp_path):
        path = str(tmp_path / "honest.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=3))
        log = RecordLogWriter.create(path, ops=ops)
        log.append(_dumps({"i": 0}))
        log.commit()
        log.append(_dumps({"i": 1}))  # durable only up to record 0
        log.flush()
        ops.simulate_crash()
        assert [obj["i"] for obj, _ in read_log(path)] == [0]

    def test_lost_rename_reverts_on_crash(self, tmp_path):
        old = tmp_path / "target"
        old.write_bytes(b"old contents\n")
        new = tmp_path / "target.tmp"
        new.write_bytes(b"new contents\n")
        ops = FaultyFileOps(DiskFaultPlan(seed=4, rename_lost_rate=1.0))
        ops.replace(str(new), str(old))
        assert old.read_bytes() == b"new contents\n"  # page cache view
        ops.simulate_crash()
        assert old.read_bytes() == b"old contents\n"
        assert new.read_bytes() == b"new contents\n"

    def test_directory_fsync_makes_the_rename_stick(self, tmp_path):
        old = tmp_path / "target"
        old.write_bytes(b"old contents\n")
        new = tmp_path / "target.tmp"
        new.write_bytes(b"new contents\n")
        ops = FaultyFileOps(DiskFaultPlan(seed=4, rename_lost_rate=1.0))
        ops.replace(str(new), str(old))
        ops.fsync_dir(str(tmp_path))
        ops.simulate_crash()
        assert old.read_bytes() == b"new contents\n"

    def test_created_file_without_dir_fsync_vanishes(self, tmp_path):
        path = str(tmp_path / "ghost.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=5))
        handle = ops.open_append(path)
        ops.write(handle, b"data\n")
        ops.fsync(handle)  # bytes durable, directory entry is not
        ops.close(handle)
        ops.simulate_crash()
        assert not os.path.exists(path)

    def _chaos_run(self, root, label):
        root.mkdir(exist_ok=True)
        plan = DiskFaultPlan(
            seed=7,
            torn_write_rate=0.25,
            bit_flip_rate=0.2,
            enospc_rate=0.1,
            fsync_drop_rate=0.2,
            rename_lost_rate=0.2,
        )
        ops = FaultyFileOps(plan)
        path = str(root / f"{label}.log")
        crashes = []
        attempts = 0
        i = 0
        while i < 25:
            attempts += 1
            assert attempts < 400, "chaos loop did not converge"
            try:
                if os.path.exists(path):
                    fsck_path(path, repair=True, ops=REAL_OPS)
                    rows = read_log(path)
                    i = rows[-1][0]["i"] + 1 if rows else 0
                    log = RecordLogWriter.append_to(path, ops=ops)
                else:
                    i = 0
                    log = RecordLogWriter.create(path, ops=ops)
                while i < 25:
                    log.append(_dumps({"kind": "row", "i": i}))
                    log.commit()
                    i += 1
                log.close()
            except DiskFault as fault:
                crashes.append((i, fault.kind.value))
                ops.simulate_crash()
        return crashes, open(path, "rb").read(), ops.stats.as_dict()

    def test_fault_schedule_is_deterministic(self, tmp_path):
        first = self._chaos_run(tmp_path / "a", "run")
        second = self._chaos_run(tmp_path / "b", "run")
        assert first[0] == second[0]  # same crashes at the same points
        assert first[1] == second[1]  # same final bytes
        assert first[2] == second[2]  # same injection ledger
        assert first[2]["crashes"] > 0, "plan injected nothing"

    def test_generation_reroll_prevents_deterministic_death(self, tmp_path):
        # Content-keyed gates alone would kill every retry of the same
        # record; the generation key must let a restart make progress.
        crashes, final, _ = self._chaos_run(tmp_path, "reroll")
        assert crashes  # it did crash ...
        rows = read_log(str(tmp_path / "reroll.log"))
        assert rows[-1][0]["i"] == 24  # ... and still finished


class TestFaultyOpsCreateDirFsync:
    def test_record_log_create_survives_immediate_crash(self, tmp_path):
        # RecordLogWriter.create fsyncs the parent directory (the
        # satellite-2 contract), so a journal's *name* is durable even
        # if the process dies before writing a byte.
        path = str(tmp_path / "fresh.log")
        ops = FaultyFileOps(DiskFaultPlan(seed=6))
        RecordLogWriter.create(path, ops=ops)
        ops.simulate_crash()
        assert os.path.exists(path)


# ---------------------------------------------------------------------------
# Crash-atomic dataset save (satellite 1 + 2)
# ---------------------------------------------------------------------------


def _record(i):
    return SerpRecord(
        query=f"q{i}",
        category="local",
        granularity="county",
        location_name=f"loc{i}",
        day=0,
        copy_index=0,
        urls=(f"http://example.com/{i}",),
        type_codes=bytes([0]),
    )


class TestAtomicDatasetSave:
    def test_save_is_atomic_under_lost_rename_and_crash(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        SerpDataset([_record(0)]).save(path)
        ops = FaultyFileOps(DiskFaultPlan(seed=8, rename_lost_rate=1.0))
        with use_fileops(ops):
            SerpDataset([_record(0), _record(1)]).save(path)
        # save fsyncs the parent directory after the rename, so even a
        # hostile plan cannot roll the dataset back to the old bytes.
        ops.simulate_crash()
        assert len(SerpDataset.load(path)) == 2
        assert not path.with_name(path.name + ".tmp").exists()

    def test_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "crawl.jsonl.gz"
        SerpDataset([_record(0)]).save(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["crawl.jsonl.gz"]
        assert len(SerpDataset.load(path)) == 1


# ---------------------------------------------------------------------------
# Wide-event log damage tolerance (satellite 3)
# ---------------------------------------------------------------------------


class TestEventLogDamage:
    def _log(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, log_id="deadbeef", meta={"k": "v"})
        for i in range(4):
            log.emit({"id": f"e{i}", "stream": "serve", "ts": float(i)})
        log.close()
        return path

    def test_torn_tail_reported_with_offset(self, tmp_path):
        path = self._log(tmp_path)
        durable = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"~F1 00000")
        header, events, summary = read_events(path)
        assert len(events) == 4 and summary is not None
        problems = validate_events(path)
        assert any(
            "truncated: true" in p and str(durable) in p for p in problems
        )

    def test_lost_summary_reads_as_none(self, tmp_path):
        path = self._log(tmp_path)
        data = open(path, "rb").read()
        lines = data.split(b"\n")
        open(path, "wb").write(b"\n".join(lines[:-2]) + b"\n")
        header, events, summary = read_events(path)
        assert summary is None
        assert len(events) == 4
        assert any("no summary" in p for p in validate_events(path))

    def test_interior_corruption_raises_on_read_reports_on_validate(
        self, tmp_path
    ):
        path = self._log(tmp_path)
        flipped = _flip_payload_digit(open(path, "rb").read(), 2)
        open(path, "wb").write(flipped)
        with pytest.raises(StoreCorruption):
            read_events(path)
        problems = validate_events(path)
        assert any("corrupt record after record 2" in p for p in problems)


# ---------------------------------------------------------------------------
# Audit-store retention / compaction equivalence
# ---------------------------------------------------------------------------


def _audit_spec(retention=None):
    config = StudyConfig.small(
        list(build_corpus())[:4],
        seed=TEST_SEED,
        days=1,
        locations_per_granularity=2,
    )
    return AuditSpec(
        name="aud",
        config=config,
        drift=DriftConfig(baseline_cycles=1, mw_window=1),
        retention_cycles=retention,
    )


class TestAuditCompaction:
    @pytest.fixture(scope="class")
    def twins(self, tmp_path_factory):
        """The same audit run with and without retention, 3 cycles each."""
        out = {}
        for label, retention in (("plain", None), ("compact", 2)):
            root = tmp_path_factory.mktemp(f"audit-{label}")
            scheduler = AuditScheduler(str(root))
            spec = _audit_spec(retention)
            audit = scheduler.register(spec)
            for _ in range(3):
                scheduler.run_cycle("aud")
            out[label] = {
                "root": root,
                "ledger": audit.store.alert_ledger_bytes(),
                "cycles": [dict(c) for c in audit.store.cycles],
                "next": audit.store.next_ordinal,
            }
            scheduler.close()
        return out

    def test_retention_keeps_last_n_cycles(self, twins):
        assert [c["ordinal"] for c in twins["plain"]["cycles"]] == [0, 1, 2]
        assert [c["ordinal"] for c in twins["compact"]["cycles"]] == [1, 2]

    def test_ordinals_continue_across_compaction(self, twins):
        assert twins["compact"]["next"] == twins["plain"]["next"] == 3

    def test_alert_ledger_is_bit_identical(self, twins):
        assert twins["plain"]["ledger"], "ledger must be non-empty"
        assert twins["compact"]["ledger"] == twins["plain"]["ledger"]

    def test_retained_cycle_lines_are_identical(self, twins):
        plain = {c["ordinal"]: c for c in twins["plain"]["cycles"]}
        for cycle in twins["compact"]["cycles"]:
            assert _dumps(cycle) == _dumps(plain[cycle["ordinal"]])

    def test_register_replays_compacted_store(self, twins):
        # Re-opening must replay the compaction summary through a fresh
        # monitor and accept the store (the tamper check still works).
        scheduler = AuditScheduler(str(twins["compact"]["root"]))
        audit = scheduler.register(_audit_spec(2))
        assert audit.store.next_ordinal >= 3
        scheduler.close()

    def test_future_cycles_are_byte_identical(self, twins):
        lines = {}
        for label, retention in (("plain", None), ("compact", 2)):
            scheduler = AuditScheduler(str(twins[label]["root"]))
            audit = scheduler.register(_audit_spec(retention))
            scheduler.run_cycle("aud")
            lines[label] = _dumps(audit.store.cycles[-1])
            ledger = audit.store.alert_ledger_bytes()
            scheduler.close()
            lines[label + "-ledger"] = ledger
        assert lines["plain"] == lines["compact"]
        assert lines["plain-ledger"] == lines["compact-ledger"]

    def test_compacted_store_scans_clean(self, twins):
        path = twins["compact"]["root"] / "aud.audit.jsonl"
        assert fsck_path(str(path)).exit_code == 0
        header, cycles = AuditStore.read(str(path))
        ordinals = [c["ordinal"] for c in cycles]
        assert ordinals == list(range(ordinals[0], ordinals[0] + len(ordinals)))
        assert len(ordinals) <= 2  # retention_cycles=2 is enforced
