"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.datastore import SerpDataset
from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.queries.corpus import build_corpus


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    corpus = build_corpus()
    queries = [corpus.get("School"), corpus.get("Starbucks"), corpus.get("Gay Marriage"),
               corpus.get("Barack Obama")]
    config = StudyConfig.small(queries, days=2, locations_per_granularity=3)
    dataset = Study(config).run()
    path = tmp_path_factory.mktemp("cli") / "dataset.jsonl.gz"
    dataset.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--out", "x.jsonl"])
        assert args.scale == "small"

    def test_report_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--dataset", "x", "--figure", "9"])


class TestCommands:
    def test_run_and_report_round_trip(self, tmp_path, capsys):
        out = tmp_path / "mini.jsonl"
        # A 1-day small run is the cheapest full pipeline exercise.
        assert main(["run", "--scale", "small", "--days", "1", "--out", str(out)]) == 0
        assert SerpDataset.load(out)
        assert main(["report", "--dataset", str(out), "--figure", "2"]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out

    def test_report_all_figures(self, saved_dataset, capsys):
        assert main(["report", "--dataset", str(saved_dataset), "--figure", "all"]) == 0
        out = capsys.readouterr().out
        for figure in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7", "Figure 8"):
            assert figure in out

    def test_validate_command(self, capsys):
        assert main(["validate", "--machines", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "result agreement" in out

    def test_demographics_command(self, saved_dataset, capsys):
        assert main(["demographics", "--dataset", str(saved_dataset), "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "median_income" in out
        assert "physical_distance_miles" in out

    def test_chart_command(self, saved_dataset, capsys):
        assert main(["chart", "--dataset", str(saved_dataset), "--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "█" in out

    def test_chart_fig8(self, saved_dataset, capsys):
        assert main(
            ["chart", "--dataset", str(saved_dataset), "--figure", "8",
             "--granularity", "county"]
        ) == 0
        assert "noise floor" in capsys.readouterr().out

    def test_content_command(self, saved_dataset, capsys):
        assert main(["content", "--dataset", str(saved_dataset)]) == 0
        out = capsys.readouterr().out
        assert "locality" in out
        assert "source mix" in out

    def test_carryover_command(self, capsys):
        assert main(["carryover", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Session carryover" in out

    def test_export_command(self, saved_dataset, tmp_path, capsys):
        out_dir = tmp_path / "export"
        assert main(
            ["export", "--dataset", str(saved_dataset), "--out", str(out_dir)]
        ) == 0
        assert (out_dir / "fig2.csv").exists()
        assert (out_dir / "fig8_county.json").exists()

    def test_audit_command(self, capsys):
        assert main(["audit", "Coffee", "Barack Obama", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Coffee" in out
        assert "verdict" in out

    def test_diff_command(self, saved_dataset, capsys):
        assert main(["diff", "--a", str(saved_dataset), "--b", str(saved_dataset)]) == 0
        out = capsys.readouterr().out
        assert "identical pages: 100.0%" in out

    def test_reportcard_command(self, saved_dataset, tmp_path, capsys):
        out_file = tmp_path / "REPORT.md"
        assert main(
            ["reportcard", "--dataset", str(saved_dataset), "--out", str(out_file)]
        ) == 0
        assert "## Headline" in out_file.read_text()

    def test_serve_bench_command(self, capsys):
        assert main(
            ["serve-bench", "--requests", "120", "--clients", "25", "--seed", "9",
             "--routing", "geo-affinity", "--cache-size", "256"]
        ) == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "hit-rate" in out
        assert "per-replica" in out

    def test_serve_bench_rejects_bad_routing(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--routing", "coin-flip"])

    def test_serve_bench_fleet_mode_writes_trajectory(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        args = ["serve-bench", "--gateways", "2", "--requests", "150",
                "--clients", "5000", "--seed", "9", "--out", str(out),
                "--fail-on-regress", "50"]
        assert main(args) == 0
        printed = capsys.readouterr().out
        assert "gateways" in printed
        assert "degr" in printed  # degraded column, never folded into ok
        import json

        trajectory = json.loads(out.read_text())
        assert trajectory["format"] == "trajectory-v1"
        assert trajectory["benchmark"] == "serve"
        report = trajectory["entries"][-1]
        assert [cell["gateways"] for cell in report["cells"]] == [1, 2]
        assert all(cell["requests_per_second"] > 0 for cell in report["cells"])
        # Second run gates against the entry the first one appended.
        assert main(args) == 0

    def test_chaos_serve_smoke_accounts_for_everything(self, tmp_path, capsys):
        ledger = tmp_path / "serve-ledger.json"
        assert main(["chaos-serve", "--smoke", "--requests", "200",
                     "--seed", "9", "--fault-seed", "11",
                     "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "unaccounted=0 (OK)" in out
        import json

        raw = json.loads(ledger.read_text())
        assert raw["unaccounted"] == 0
        assert raw["offered"] == 200
        assert raw["offered"] == (
            raw["served_fresh"] + raw["served_stale"]
            + raw["shed"] + raw["failed"]
        )
        assert sum(raw["faults_injected"].values()) > 0

    def test_run_with_workers_matches_sequential(self, tmp_path):
        sequential = tmp_path / "seq.jsonl"
        parallel = tmp_path / "par.jsonl"
        assert main(["run", "--scale", "small", "--days", "1",
                     "--out", str(sequential)]) == 0
        assert main(["run", "--scale", "small", "--days", "1",
                     "--out", str(parallel), "--workers", "2"]) == 0
        assert sequential.read_bytes() == parallel.read_bytes()

    def test_crawl_bench_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_crawl.json"
        assert main(["crawl-bench", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "workers" in printed
        import json

        trajectory = json.loads(out.read_text())
        assert trajectory["format"] == "trajectory-v1"
        report = trajectory["entries"][-1]
        assert report["parity_ok"] is True
        assert report["timestamp"]
        assert [cell["workers"] for cell in report["cells"]] == [1, 2]
        assert all(cell["requests_per_second"] > 0 for cell in report["cells"])

    def test_crawl_bench_profile_prints_hot_path(self, tmp_path, capsys):
        out = tmp_path / "BENCH_crawl.json"
        assert main(["crawl-bench", "--smoke", "--profile",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "cumulative" in printed  # the cProfile table header

    def test_schedule_command(self, capsys):
        assert main(["schedule", "--machines", "44"]) == 0
        out = capsys.readouterr().out
        assert "feasible: yes" in out
        assert main(["schedule", "--machines", "1"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out


class TestChaosCommand:
    def test_chaos_smoke(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fault ledger (injected = recovered + lost):" in out
        assert "retry histogram" in out
        assert "location coverage" in out
        assert "all injected faults accounted for" in out

    def test_chaos_smoke_parallel_with_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "chaos.ckpt"
        assert main(
            ["chaos", "--smoke", "--workers", "2", "--checkpoint", str(ckpt)]
        ) == 0
        assert ckpt.exists()
        assert "all injected faults accounted for" in capsys.readouterr().out
        # Re-running against the completed journal replays rather than
        # re-crawling and reaches the same verdict.
        assert main(
            ["chaos", "--smoke", "--workers", "2", "--checkpoint", str(ckpt)]
        ) == 0
        assert "all injected faults accounted for" in capsys.readouterr().out

    def test_run_with_checkpoint_is_reproducible(self, tmp_path):
        out = tmp_path / "mini.jsonl"
        ckpt = tmp_path / "mini.ckpt"
        argv = ["run", "--scale", "small", "--days", "1", "--out", str(out),
                "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        first = out.read_bytes()
        assert ckpt.exists()
        assert main(argv) == 0
        assert out.read_bytes() == first


class TestObservabilityCommands:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs")
        out = root / "mini.jsonl"
        trace = root / "mini.trace.jsonl"
        metrics = root / "mini.metrics.json"
        argv = [
            "run", "--scale", "small", "--days", "1", "--workers", "2",
            "--gateway", "--plan", "flaky-network", "--fault-seed", "7",
            "--out", str(out), "--trace", str(trace), "--metrics", str(metrics),
        ]
        assert main(argv) == 0
        return trace, metrics

    def test_trace_check_passes(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", str(trace), "--check"]) == 0
        assert ": ok (" in capsys.readouterr().out

    def test_trace_check_fails_on_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.trace.jsonl"
        bogus.write_text('{"kind":"span","id":"x"}\n', encoding="utf-8")
        assert main(["trace", str(bogus), "--check"]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_trace_profile_default(self, traced_run, capsys):
        trace, _ = traced_run
        assert main(["trace", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "top spans" in out

    def test_trace_chrome_export(self, traced_run, tmp_path):
        import json

        trace, _ = traced_run
        chrome = tmp_path / "mini.chrome.json"
        assert main(["trace", str(trace), "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text(encoding="utf-8"))
        assert doc["traceEvents"]

    def test_metrics_table_and_prom(self, traced_run, capsys):
        _, metrics = traced_run
        assert main(["metrics", str(metrics)]) == 0
        table = capsys.readouterr().out
        assert "crawl_pages_total" in table
        assert "gateway_requests_total" in table
        assert main(["metrics", str(metrics), "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_crawl_pages_total counter" in prom

    def test_run_trace_rejects_checkpoint(self, tmp_path):
        argv = [
            "run", "--scale", "small", "--days", "1",
            "--out", str(tmp_path / "x.jsonl"),
            "--trace", str(tmp_path / "x.trace"),
            "--checkpoint", str(tmp_path / "x.ckpt"),
        ]
        with pytest.raises(ValueError, match="checkpoint"):
            main(argv)

    def test_serve_bench_trace(self, tmp_path, capsys):
        trace = tmp_path / "serve.trace.jsonl"
        assert main(
            ["serve-bench", "--requests", "200", "--clients", "40",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace), "--check"]) == 0
        assert "0 round(s)" in capsys.readouterr().out

    def test_chaos_retry_histogram_renders_bars(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "retry histogram (attempts per delivered query):" in out
        assert "attempt(s):" in out
        assert "#" in out


class TestAuditServiceCLI:
    def test_terms_subcommand_explicit(self, capsys):
        assert main(["audit", "terms", "Coffee", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Coffee" in out and "verdict" in out

    def test_run_once_smoke_writes_store_and_ledger(self, tmp_path, capsys):
        store = tmp_path / "audits"
        ledger = tmp_path / "alerts.jsonl"
        argv = [
            "audit", "run-once", "--smoke", "--cycles", "2",
            "--store", str(store), "--ledger", str(ledger),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "smoke: cycles 2/2" in out
        assert (store / "smoke.audit.jsonl").exists()
        assert ledger.exists()

    def test_run_once_is_deterministic_across_invocations(self, tmp_path, capsys):
        store_a, store_b = tmp_path / "a", tmp_path / "b"
        for store in (store_a, store_b):
            assert main(
                ["audit", "run-once", "--smoke", "--cycles", "2",
                 "--store", str(store)]
            ) == 0
        capsys.readouterr()
        assert (store_a / "smoke.audit.jsonl").read_bytes() == (
            store_b / "smoke.audit.jsonl"
        ).read_bytes()

    def test_status_subcommand(self, tmp_path, capsys):
        store = tmp_path / "audits"
        assert main(
            ["audit", "run-once", "--smoke", "--cycles", "1", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(["audit", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "smoke: 1 cycle(s)" in out

    def test_status_empty_directory(self, tmp_path, capsys):
        assert main(["audit", "status", "--store", str(tmp_path)]) == 0
        assert "no audit stores" in capsys.readouterr().out

    def test_serve_check_round_trips_every_route(self, tmp_path, capsys):
        argv = [
            "audit", "serve", "--smoke", "--cycles", "1",
            "--store", str(tmp_path / "audits"), "--port", "0", "--check",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for path in ("/healthz", "/audits", "/metrics", "/audits/smoke/series"):
            assert f"GET {path} -> 200" in out
