"""Tests for pagination, dataset diffing, the audit facade, and corpus
serialisation."""

import pytest

from repro.core.audit import audit_queries
from repro.core.diff import diff_datasets
from repro.core.pagination import run_pagination_experiment
from repro.core.parser import parse_serp_html
from repro.geo.coords import LatLon
from repro.queries.corpus import QueryCorpus, build_corpus

CLEVELAND = LatLon(41.4993, -81.6944)


class TestPagination:
    def test_page_two_has_different_results(self, engine, make_request):
        first = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=3))
        import dataclasses

        request = dataclasses.replace(
            make_request("School", gps=CLEVELAND, nonce=3), page=1
        )
        second = engine.serve_page(request)
        assert second.page == 1
        from repro.engine.serp import CardType

        organic_first = {
            str(c.documents[0].url)
            for c in first.cards
            if c.card_type is CardType.ORGANIC
        }
        organic_second = {
            str(c.documents[0].url)
            for c in second.cards
            if c.card_type is CardType.ORGANIC
        }
        # Page 2 continues the ranking: organic windows are disjoint.
        assert organic_second
        assert not organic_first & organic_second

    def test_meta_cards_only_on_first_page(self, engine, make_request):
        import dataclasses

        from repro.engine.serp import CardType

        for nonce in range(10):
            request = dataclasses.replace(
                make_request("School", gps=CLEVELAND, nonce=nonce), page=1
            )
            page = engine.serve_page(request)
            assert page.card_count(CardType.MAPS) == 0
            assert page.card_count(CardType.NEWS) == 0

    def test_page_number_round_trips_through_html(self, engine, make_request):
        import dataclasses

        from repro.engine.render import render_page

        request = dataclasses.replace(
            make_request("School", gps=CLEVELAND, nonce=2), page=1
        )
        page = engine.serve_page(request)
        parsed = parse_serp_html(render_page(page))
        assert parsed.page == 1

    def test_negative_page_rejected(self, make_request):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(make_request("School"), page=-1)

    def test_experiment_deeper_pages_more_local(self):
        result = run_pagination_experiment(99, pages=(0, 1), location_count=4)
        assert len(result.cells) == 2
        first, second = result.cells
        assert second.jaccard.mean < first.jaccard.mean

    def test_experiment_render(self):
        result = run_pagination_experiment(99, pages=(0,), location_count=3)
        assert "page" in result.render()

    def test_experiment_invalid_inputs(self):
        with pytest.raises(ValueError):
            run_pagination_experiment(1, pages=())
        with pytest.raises(ValueError):
            run_pagination_experiment(1, location_count=1)
        with pytest.raises(ValueError):
            run_pagination_experiment(1, queries=[])


class TestDatasetDiff:
    def test_self_diff_is_identical(self, small_dataset):
        diff = diff_datasets(small_dataset, small_dataset)
        assert diff.identical_fraction == 1.0
        assert diff.only_in_a == 0
        assert diff.only_in_b == 0
        assert diff.edit().mean == 0.0

    def test_partial_overlap_counted(self, small_dataset):
        subset = small_dataset.filter(day=0)
        diff = diff_datasets(small_dataset, subset)
        assert diff.shared == len(subset)
        assert diff.only_in_a == len(small_dataset) - len(subset)
        assert diff.only_in_b == 0

    def test_engine_change_shows_in_diff(self):
        from repro.core.crossengine import BINGO_CALIBRATION
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study

        corpus = build_corpus()
        queries = [corpus.get("School"), corpus.get("Gay Marriage")]
        config = StudyConfig.small(queries, seed=22, days=1, locations_per_granularity=3)
        before = Study(config).run()
        after = Study(
            config.with_overrides(calibration=BINGO_CALIBRATION)
        ).run()
        diff = diff_datasets(before, after)
        assert diff.identical_fraction < 1.0
        assert diff.edit().mean > 0
        # Render includes the most-changed queries.
        assert "most changed queries" in diff.render()

    def test_by_category_aggregation(self, small_dataset):
        diff = diff_datasets(small_dataset, small_dataset)
        by_category = diff.by_category()
        assert set(by_category) == set(small_dataset.categories())

    def test_probe_metrics_bounded(self):
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study

        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("Coffee")], seed=5, days=1, locations_per_granularity=3
        )
        a = Study(config).run()
        b = Study(config.with_overrides(seed=6)).run()
        # Different seeds → different locations; diff may share nothing.
        diff = diff_datasets(a, b)
        for probe in diff.probes:
            assert 0.0 <= probe.jaccard <= 1.0
            assert 0.0 <= probe.rbo <= 1.0


class TestAuditFacade:
    @pytest.fixture(scope="class")
    def report(self):
        return audit_queries(
            ["Coffee", "Starbucks", "Gun Control", "Barack Obama"],
            seed=12,
            days=1,
            locations_per_granularity=4,
        )

    def test_all_terms_audited(self, report):
        assert len(report.terms) == 4

    def test_local_terms_flagged(self, report):
        personalized = {t.query.text for t in report.personalized_terms()}
        assert "Coffee" in personalized

    def test_national_politician_not_flagged(self, report):
        unpersonalized = {t.query.text for t in report.unpersonalized_terms()}
        assert "Barack Obama" in unpersonalized

    def test_net_values_nonnegative(self, report):
        for term in report.terms:
            for value in term.net_by_granularity.values():
                assert value >= 0.0

    def test_render_contains_verdicts(self, report):
        text = report.render()
        assert "PERSONALIZED" in text
        assert "no effect" in text

    def test_accepts_query_objects(self):
        corpus = build_corpus()
        report = audit_queries(
            [corpus.get("KFC")], seed=3, days=1, locations_per_granularity=3
        )
        assert report.terms[0].query.is_brand

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            audit_queries([])


class TestCorpusSerialisation:
    def test_round_trip(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = QueryCorpus.load(path)
        assert len(loaded) == len(corpus)
        assert [q.text for q in loaded] == [q.text for q in corpus]
        assert loaded.get("Bill Johnson").is_common_name
        assert loaded.get("Starbucks").is_brand

    def test_malformed_entry_reported(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"text": "x"}]', encoding="utf-8")
        with pytest.raises(ValueError) as excinfo:
            QueryCorpus.load(path)
        assert "entry 0" in str(excinfo.value)

    def test_non_array_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"text": "x"}', encoding="utf-8")
        with pytest.raises(ValueError):
            QueryCorpus.load(path)
