"""Tests for deterministic seed derivation."""

import random

import pytest

from repro.seeding import derive_rng, derive_seed, stable_hash, stable_unit


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_master_changes_child(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_changes_child(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_path_depth_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab")
        assert derive_seed(7, "a") != derive_seed(7, "a", "a")

    def test_type_tagging_distinguishes_int_and_str(self):
        assert derive_seed(7, 1) != derive_seed(7, "1")

    def test_type_tagging_distinguishes_bool_and_int(self):
        assert derive_seed(7, True) != derive_seed(7, 1)

    def test_float_components(self):
        assert derive_seed(7, 1.5) == derive_seed(7, 1.5)
        assert derive_seed(7, 1.5) != derive_seed(7, 1.25)

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            derive_seed(7, [1, 2])

    def test_result_is_64_bit(self):
        for path in ("x", "y", "z"):
            assert 0 <= derive_seed(7, path) < 2**64


class TestDeriveRng:
    def test_returns_seeded_random(self):
        rng = derive_rng(7, "stream")
        assert isinstance(rng, random.Random)

    def test_same_path_same_stream(self):
        a = derive_rng(7, "s").random()
        b = derive_rng(7, "s").random()
        assert a == b

    def test_different_paths_diverge(self):
        a = [derive_rng(7, "s1").random() for _ in range(3)]
        b = [derive_rng(7, "s2").random() for _ in range(3)]
        assert a != b


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("u", 1) == stable_hash("u", 1)

    def test_sensitive_to_every_part(self):
        assert stable_hash("u", 1) != stable_hash("u", 2)
        assert stable_hash("u", 1) != stable_hash("v", 1)

    def test_differs_from_derive_seed(self):
        # Different domain separation tags.
        assert stable_hash("a") != derive_seed("a")  # type: ignore[arg-type]


class TestStableUnit:
    def test_in_unit_interval(self):
        for i in range(100):
            assert 0.0 <= stable_unit("gate", i) < 1.0

    def test_deterministic(self):
        assert stable_unit("gate", 5) == stable_unit("gate", 5)

    def test_roughly_uniform(self):
        values = [stable_unit("uniformity", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        assert min(values) < 0.05
        assert max(values) > 0.95
