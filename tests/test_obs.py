"""Observability layer: deterministic traces, unified metrics, profiling.

The tentpole invariant under test: a trace written with ``run(trace=
path)`` is **byte-identical for any worker count** — gateway on or
off, faults active — because span identity is positional (round,
treatment, sibling ordinal), workers emit per-round trees the parent
merges in canonical order, and gateway spans are synthesized at merge
time by replaying admission over the canonical request stream.

The metrics registry's contract: one snapshot/merge/restore protocol
for every stats holder, strict about unknown keys, and composable with
checkpoint kill-and-resume (the snapshot after a resumed run equals
the uninterrupted run's).
"""

import json

import pytest

from repro.core.experiment import StudyConfig
from repro.core.runner import CrawlStats, Study
from repro.faults.injector import FaultStats
from repro.faults.plan import FaultPlan
from repro.obs.exporters import chrome_trace, read_trace, validate_trace
from repro.obs.metrics import Histogram, MetricsRegistry, render_prometheus
from repro.obs.profile import profile_trace
from repro.obs.trace import NULL_TRACER, Tracer, trace_id_for
from repro.queries.corpus import build_corpus
from repro.serve.stats import GatewayStats

FLAKY = FaultPlan.named("flaky-network", seed=7)


def _queries():
    corpus = build_corpus()
    return [corpus.get("Starbucks"), corpus.get("School"), corpus.get("Gay Marriage")]


def _config(**overrides):
    config = StudyConfig.small(
        _queries(), days=2, locations_per_granularity=2
    ).with_overrides(machine_count=5, fault_plan=FLAKY, max_retries=2)
    return config.with_overrides(**overrides) if overrides else config


def _trace_bytes(config, path, workers: int) -> bytes:
    Study(config).run(workers=workers, trace=str(path))
    return path.read_bytes()


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_observe_buckets_by_upper_bound(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=2, overflow
        assert histogram.count == 4
        assert histogram.max_minutes == 5.0
        assert histogram.mean_minutes == pytest.approx(2.0)

    def test_merge_requires_matching_bounds(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_sums_counts_and_keeps_max(self):
        a, b = Histogram(), Histogram()
        a.observe(0.2)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.max_minutes == 3.0

    def test_from_counts_is_exact(self):
        histogram = Histogram.from_counts({1: 36, 2: 12})
        assert histogram.count == 48
        assert histogram.mean_minutes == pytest.approx(1.25)
        rendered = histogram.render(indent="  ", unit="attempt(s)")
        assert "<=1 attempt(s): 36" in rendered
        assert "count=48" in rendered

    def test_render_empty(self):
        assert Histogram().render(indent="  ") == "  (empty)"

    def test_restore_round_trip_and_strictness(self):
        histogram = Histogram()
        histogram.observe(0.3)
        state = histogram.capture_state()
        fresh = Histogram()
        fresh.restore_state(state)
        assert fresh == histogram
        with pytest.raises(ValueError):
            fresh.restore_state({**state, "bogus": 1})


# ---------------------------------------------------------------------------
# MetricSet protocol on the real stats holders
# ---------------------------------------------------------------------------


class TestMetricSetProtocol:
    def test_crawl_stats_round_trip(self):
        stats = CrawlStats(requests=7, pages=5, retries=2)
        stats.record_failure_kind("timeout")
        fresh = CrawlStats()
        fresh.restore_state(stats.capture_state())
        assert fresh == stats

    def test_crawl_stats_merge_sums_kind_breakdown(self):
        a, b = CrawlStats(), CrawlStats()
        a.record_failure_kind("timeout")
        b.record_failure_kind("timeout")
        b.record_failure_kind("dns-failure")
        a.merge(b)
        assert a.failures_by_kind == {"timeout": 2, "dns-failure": 1}

    def test_restore_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            CrawlStats().restore_state({**CrawlStats().capture_state(), "x": 1})

    def test_restore_rejects_missing_keys(self):
        state = CrawlStats().capture_state()
        state.pop("requests")
        with pytest.raises(ValueError, match="missing"):
            CrawlStats().restore_state(state)

    def test_fault_stats_retry_histogram_keys_survive_json(self):
        stats = FaultStats()
        stats.record_attempts(2)
        stats.record_attempts(2)
        state = json.loads(json.dumps(stats.capture_state()))
        fresh = FaultStats()
        fresh.restore_state(state)
        assert fresh.retry_histogram == {2: 2}

    def test_gateway_stats_restore_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            GatewayStats().restore_state(
                {**GatewayStats().capture_state(), "legacy_field": 3}
            )

    def test_gateway_stats_render_reports_service_and_total_max(self):
        stats = GatewayStats()
        stats.service.observe(0.2)
        stats.total.observe(0.5)
        rendered = stats.render()
        assert "service 12.00s avg / 12.00s max" in rendered
        assert "total 30.00s avg / 30.00s max" in rendered

    def test_gateway_stats_merge_takes_max_depth(self):
        a, b = GatewayStats(), GatewayStats()
        a.record_dispatch("dc00", depth=3)
        b.record_dispatch("dc01", depth=9)
        a.merge(b)
        assert a.max_queue_depth == 9
        assert a.replica_requests == {"dc00": 1, "dc01": 1}


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer()
        tracer.begin("x", start=0.0)
        tracer.event("e", at=0.0)
        tracer.end()
        assert tracer.drain() == []
        assert not NULL_TRACER.enabled

    def test_span_ids_are_positional(self):
        def build():
            tracer = Tracer()
            tracer.enable("abc")
            tracer.begin_round(3)
            tracer.begin("crawl", start=1.0, treatment=5)
            tracer.begin("attempt", start=1.0)
            tracer.end(status="ok")
            tracer.end(outcome="ok")
            return tracer.drain()

        assert build() == build()

    def test_default_end_covers_children_and_events(self):
        tracer = Tracer()
        tracer.enable("abc")
        tracer.begin("crawl", start=0.0, treatment=0)
        tracer.event("late", at=4.0)
        tracer.end()
        (tree,) = tracer.drain()
        assert tree["end"] == 4.0

    def test_drain_with_open_span_raises(self):
        tracer = Tracer()
        tracer.enable("abc")
        tracer.begin("crawl", start=0.0, treatment=0)
        with pytest.raises(RuntimeError, match="open"):
            tracer.drain()

    def test_trace_id_is_a_pure_function_of_the_fingerprint(self):
        assert trace_id_for({"a": 1}) == trace_id_for({"a": 1})
        assert trace_id_for({"a": 1}) != trace_id_for({"a": 2})


# ---------------------------------------------------------------------------
# Trace determinism (the tentpole invariant)
# ---------------------------------------------------------------------------


class TestTraceDeterminism:
    @pytest.mark.parametrize("gateway", [False, True], ids=["direct", "gateway"])
    def test_trace_is_byte_identical_across_worker_counts(self, tmp_path, gateway):
        config = _config(route_via_gateway=gateway)
        baseline = _trace_bytes(config, tmp_path / "w1.trace", workers=1)
        for workers in (2, 4):
            shard = _trace_bytes(config, tmp_path / f"w{workers}.trace", workers)
            assert shard == baseline, f"workers={workers} gateway={gateway}"

    def test_rerun_reproduces_the_same_trace(self, tmp_path):
        first = _trace_bytes(_config(), tmp_path / "a.trace", workers=1)
        second = _trace_bytes(_config(), tmp_path / "b.trace", workers=2)
        assert first == second

    def test_trace_does_not_perturb_the_dataset(self, tmp_path):
        plain = Study(_config()).run()
        traced = Study(_config()).run(trace=str(tmp_path / "t.trace"))
        assert [r.to_dict() for r in traced] == [r.to_dict() for r in plain]

    def test_trace_with_checkpoint_is_refused(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            Study(_config()).run(
                trace=str(tmp_path / "t.trace"),
                checkpoint=str(tmp_path / "c.ckpt"),
            )
        with pytest.raises(ValueError, match="checkpoint"):
            Study(_config()).run(
                workers=2,
                trace=str(tmp_path / "t2.trace"),
                checkpoint=str(tmp_path / "c2.ckpt"),
            )

    def test_tracing_off_by_default(self, tmp_path):
        study = Study(_config())
        study.run()
        assert not study.tracer.enabled


class TestTraceFile:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "study.trace.jsonl"
        Study(_config(route_via_gateway=True)).run(trace=str(path))
        return path

    def test_validates_clean(self, trace_path):
        assert validate_trace(trace_path) == []

    def test_header_meta_is_the_fingerprint(self, trace_path):
        header, _, _ = read_trace(trace_path)
        assert header["meta"] == Study(
            _config(route_via_gateway=True)
        ).checkpoint_fingerprint()

    def test_contains_every_layer(self, trace_path):
        _, spans, _ = read_trace(trace_path)
        names = {span["name"] for span in spans}
        assert {
            "study.run",
            "round",
            "crawl",
            "attempt",
            "gateway.queue",
            "gateway.service",
        } <= names
        events = {
            event["name"] for span in spans for event in span["events"]
        }
        assert "fault.injected" in events
        assert "net.dns" in events

    def test_round_count_matches_schedule(self, trace_path):
        _, spans, summary = read_trace(trace_path)
        rounds = [span for span in spans if span["name"] == "round"]
        assert len(rounds) == Study(_config()).round_count()
        assert summary["rounds"] == len(rounds)

    def test_validator_catches_tampering(self, trace_path, tmp_path):
        lines = trace_path.read_text(encoding="utf-8").splitlines()
        spans = [i for i, line in enumerate(lines) if '"kind":"span"' in line]
        broken = tmp_path / "tampered.trace.jsonl"
        broken.write_text(
            "\n".join(lines[: spans[3]] + lines[spans[3] + 1 :]) + "\n",
            encoding="utf-8",
        )
        assert validate_trace(broken)

    def test_torn_tail_is_reported_not_raised(self, trace_path, tmp_path):
        data = trace_path.read_bytes()
        torn = tmp_path / "torn.trace.jsonl"
        torn.write_bytes(data + b'{"kind": "span", "name": "cra')
        header, spans, summary = read_trace(torn)  # must not raise
        assert summary is not None  # the durable prefix is complete
        problems = validate_trace(torn)
        assert any(
            "truncated: true" in p and str(len(data)) in p for p in problems
        )

    def test_mid_file_cut_returns_durable_prefix(self, trace_path, tmp_path):
        data = trace_path.read_bytes()
        cut = tmp_path / "cut.trace.jsonl"
        cut.write_bytes(data[: int(len(data) * 0.6)])
        header, spans, summary = read_trace(cut)
        assert header is not None
        assert spans  # everything before the torn byte survives
        assert summary is None
        assert any("truncated: true" in p for p in validate_trace(cut))

    def test_chrome_export(self, trace_path):
        doc = chrome_trace(trace_path)
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "crawl" for e in events)
        assert any(e["ph"] == "i" for e in events)
        schedule_rows = [
            e for e in events if e["ph"] == "M" and e["args"]["name"] == "schedule"
        ]
        assert len(schedule_rows) == 1
        json.dumps(doc)  # must be serializable as-is

    def test_profile(self, trace_path):
        profile = profile_trace(trace_path)
        assert len(profile.rounds) == Study(_config()).round_count()
        for round_profile in profile.rounds:
            assert round_profile.makespan_minutes >= 0
            assert all(v >= 0 for v in round_profile.attribution.values())
        rendered = profile.render(top=5)
        assert "critical-path attribution" in rendered
        assert "round makespan" in rendered
        assert "slowest rounds" in rendered


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_duplicate_registration_rejected(self):
        stats = CrawlStats()
        registry = MetricsRegistry()
        registry.register_counter("x_total", stats, "requests")
        with pytest.raises(ValueError, match="twice"):
            registry.register_counter("x_total", stats, "requests")

    def test_snapshot_reads_live_objects(self):
        stats = CrawlStats()
        registry = MetricsRegistry()
        registry.register_counter("x_total", stats, "requests")
        stats.requests = 9
        assert registry.snapshot()["metrics"]["x_total"]["value"] == 9

    def test_restore_is_strict(self):
        registry = MetricsRegistry()
        registry.register_counter("x_total", CrawlStats(), "requests")
        snapshot = registry.snapshot()
        snapshot["metrics"]["rogue"] = {"kind": "counter", "value": 1}
        with pytest.raises(ValueError, match="unregistered"):
            registry.restore(snapshot)
        with pytest.raises(ValueError, match="missing"):
            registry.restore({"version": 1, "metrics": {}})

    def test_merge_folds_another_snapshot(self):
        a, b = CrawlStats(requests=3), CrawlStats(requests=4)
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.register_counter("x_total", a, "requests")
        registry_b.register_counter("x_total", b, "requests")
        registry_a.merge(registry_b.snapshot())
        assert a.requests == 7

    def test_study_registry_snapshot_round_trips_through_json(self):
        study = Study(_config(route_via_gateway=True))
        study.run()
        registry = study.metrics_registry()
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["metrics"]["crawl_pages_total"]["value"] == study.stats.pages
        fresh = Study(_config(route_via_gateway=True))
        fresh.metrics_registry().restore(snapshot)
        assert fresh.stats == study.stats
        assert fresh.fault_stats == study.fault_stats
        assert fresh.gateway.stats == study.gateway.stats

    def test_ranker_cache_counters_are_opt_in(self):
        # Cache traffic depends on *how* a run executed (sharding,
        # resume), so the default registry must exclude it — the
        # snapshot is part of the kill/resume byte-identity contract.
        study = Study(_config())
        study.run()
        default = study.metrics_registry().snapshot()["metrics"]
        assert "ranker_cache_hits_total" not in default
        assert "ranker_cache_misses_total" not in default
        ranker = study.engine.ranker
        opted = study.metrics_registry(include_caches=True).snapshot()["metrics"]
        assert opted["ranker_cache_hits_total"]["value"] == ranker._hits
        assert opted["ranker_cache_misses_total"]["value"] == ranker._misses
        assert ranker._hits > 0

    def test_prometheus_rendering(self):
        stats = GatewayStats()
        stats.record_dispatch("dc00", depth=2)
        stats.queue_wait.observe(0.3)
        registry = MetricsRegistry()
        registry.register_counter(
            "gw_admitted_total", stats, "admitted", help="requests admitted"
        )
        registry.register_labeled(
            "gw_replica_requests_total", stats, "replica_requests", label="replica"
        )
        registry.register_histogram("gw_queue_wait_minutes", stats, "queue_wait")
        text = registry.render_prometheus()
        assert "# HELP repro_gw_admitted_total requests admitted" in text
        assert "repro_gw_admitted_total 1" in text
        assert 'repro_gw_replica_requests_total{replica="dc00"} 1' in text
        assert 'repro_gw_queue_wait_minutes_bucket{le="+Inf"} 1' in text
        assert "repro_gw_queue_wait_minutes_count 1" in text
        assert render_prometheus(registry.snapshot()) == text


class TestMetricsAcrossResume:
    def test_snapshot_identical_after_kill_and_resume(self, tmp_path):
        """`repro metrics` before a kill equals after checkpoint resume."""
        baseline = Study(_config())
        baseline.run()
        expected = baseline.metrics_registry().snapshot()

        from tests.test_checkpoint_resume import Killed, _killing_sink

        path = tmp_path / "obs.ckpt"
        sink, _ = _killing_sink(9)
        with pytest.raises(Killed):
            Study(_config()).run(sink=sink, checkpoint=str(path))
        resumed = Study(_config())
        resumed.run(checkpoint=str(path))
        assert resumed.metrics_registry().snapshot() == expected

    def test_failures_by_kind_survives_parallel_resume(self, tmp_path):
        config = _config(fault_plan=FaultPlan.named("chaos"), max_retries=0)
        baseline = Study(config)
        baseline.run()
        assert baseline.stats.failures_by_kind  # chaos plan loses some

        from tests.test_checkpoint_resume import Killed, _killing_sink

        path = tmp_path / "par.ckpt"
        sink, _ = _killing_sink(11)
        with pytest.raises(Killed):
            Study(config).run(sink=sink, workers=2, checkpoint=str(path))
        resumed = Study(config)
        resumed.run(workers=2, checkpoint=str(path))
        assert resumed.stats.failures_by_kind == baseline.stats.failures_by_kind
        assert sum(resumed.stats.failures_by_kind.values()) == len(resumed.failures)
