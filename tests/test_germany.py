"""Tests for the Germany country pack and locator generalisation."""

import pytest

from repro.core.experiment import StudyConfig
from repro.core.personalization import PersonalizationAnalysis
from repro.core.runner import Study
from repro.geo.coords import LatLon
from repro.geo.germany import (
    GERMAN_LAENDER,
    GERMANY_LOCATOR,
    bavarian_kreis_regions,
    berlin_bezirk_regions,
    german_land_regions,
    germany_study_locations,
)
from repro.geo.granularity import Granularity
from repro.geo.locate import US_LOCATOR, RegionLocator
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory


class TestRegionLocator:
    def test_us_locator_regions(self):
        assert len(US_LOCATOR.regions()) == 50

    def test_germany_locator_regions(self):
        assert len(GERMANY_LOCATOR.regions()) == 16

    def test_empty_anchor_set_rejected(self):
        with pytest.raises(ValueError):
            RegionLocator("empty", [])

    def test_lookup_cached_and_stable(self):
        point = LatLon(48.13, 11.58)
        assert GERMANY_LOCATOR.nearest_region(point) == GERMANY_LOCATOR.nearest_region(
            point
        )


class TestGermanGeography:
    def test_sixteen_laender(self):
        assert len(GERMAN_LAENDER) == 16
        assert len(german_land_regions()) == 16

    def test_centroids_inside_germany(self):
        for name, center in GERMAN_LAENDER.items():
            assert 47.0 < center.lat < 55.5, name
            assert 5.5 < center.lon < 15.5, name

    def test_munich_resolves_to_bavaria(self):
        assert GERMANY_LOCATOR.nearest_region(LatLon(48.1351, 11.5820)) == "Bayern"

    def test_cologne_resolves_to_nrw(self):
        assert (
            GERMANY_LOCATOR.nearest_region(LatLon(50.9375, 6.9603))
            == "Nordrhein-Westfalen"
        )

    def test_bavarian_kreise_inside_bavaria(self):
        for region in bavarian_kreis_regions(30):
            assert GERMANY_LOCATOR.nearest_region(region.center) == "Bayern"

    def test_berlin_bezirke_pool(self):
        bezirke = berlin_bezirk_regions()
        assert len(bezirke) == 24  # 12 Bezirke + 12 jittered sub-centres
        names = [b.name for b in bezirke]
        assert "Mitte" in names
        assert len(set(names)) == len(names)

    def test_bezirke_near_berlin(self):
        berlin = GERMAN_LAENDER["Berlin"]
        for bezirk in berlin_bezirk_regions():
            assert bezirk.center.distance_miles(berlin) < 20

    def test_study_locations_counts(self):
        locations = germany_study_locations(1, land_count=8, kreis_count=9, bezirk_count=6)
        assert len(locations.locations(Granularity.NATIONAL)) == 8
        assert len(locations.locations(Granularity.STATE)) == 9
        assert len(locations.locations(Granularity.COUNTY)) == 6

    def test_berlin_always_in_national_set(self):
        locations = germany_study_locations(7)
        names = {r.name for r in locations.locations(Granularity.NATIONAL)}
        assert "Berlin" in names

    def test_distance_gradient(self):
        locations = germany_study_locations(1)
        county = locations.mean_pairwise_distance_miles(Granularity.COUNTY)
        state = locations.mean_pairwise_distance_miles(Granularity.STATE)
        national = locations.mean_pairwise_distance_miles(Granularity.NATIONAL)
        assert county < state < national

    def test_deterministic(self):
        a = germany_study_locations(5)
        b = germany_study_locations(5)
        assert [r.name for r in a.all_locations()] == [
            r.name for r in b.all_locations()
        ]


class TestGermanyStudy:
    @pytest.fixture(scope="class")
    def german_dataset(self):
        corpus = build_corpus()
        local = corpus.by_category(QueryCategory.LOCAL)
        queries = (
            [q for q in local if not q.is_brand][:5]
            + [q for q in local if q.is_brand][:2]
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:3]
        )
        config = StudyConfig.small(
            queries, seed=555, days=1, locations_per_granularity=4
        ).with_overrides(
            study_locations=germany_study_locations(
                555, land_count=6, kreis_count=6, bezirk_count=6
            ),
            locator=GERMANY_LOCATOR,
        )
        study = Study(config)
        dataset = study.run()
        assert not study.failures
        return dataset

    def test_complete_collection(self, german_dataset):
        assert len(german_dataset) == 10 * 18 * 2

    def test_state_content_scoped_to_laender(self, german_dataset):
        # Generic local pages collected in Bavaria carry Bavarian
        # state-government content.
        found = False
        for record in german_dataset.filter(category="local", granularity="state"):
            for url in record.urls:
                if "bayern.example.gov" in url:
                    found = True
        assert found

    def test_distance_gradient_reproduces(self, german_dataset):
        analysis = PersonalizationAnalysis(german_dataset)
        county = analysis.cell("local", "county").edit.mean
        state = analysis.cell("local", "state").edit.mean
        national = analysis.cell("local", "national").edit.mean
        assert county < state < national

    def test_local_dominates_other_categories(self, german_dataset):
        analysis = PersonalizationAnalysis(german_dataset)
        assert (
            analysis.cell("local", "national").edit.mean
            > analysis.cell("controversial", "national").edit.mean + 2
        )
