"""Cross-cutting coverage: corpus-wide classification, engine parity,
world substream independence, and seed fan-out."""

import pytest

from repro.engine.classify import QueryClassifier
from repro.engine.render import render_page
from repro.geo.coords import LatLon
from repro.queries.model import QueryCategory

CLEVELAND = LatLon(41.4993, -81.6944)


class TestCorpusWideClassification:
    def test_every_corpus_term_resolves_exactly(self, corpus):
        classifier = QueryClassifier(corpus)
        for query in corpus:
            resolved = classifier.classify(query.text)
            assert resolved == query, query.text

    def test_heuristics_recover_most_local_terms_without_corpus(self, corpus):
        classifier = QueryClassifier(None)
        local = corpus.by_category(QueryCategory.LOCAL)
        hits = sum(
            classifier.classify(q.text).category is QueryCategory.LOCAL for q in local
        )
        assert hits == len(local)

    def test_heuristics_never_call_table1_terms_local(self, corpus):
        from repro.queries.controversial import TABLE1_TERMS

        classifier = QueryClassifier(None)
        for term in TABLE1_TERMS:
            assert classifier.classify(term).category is not QueryCategory.LOCAL


class TestEngineParity:
    def test_handle_and_serve_page_agree(self, engine, make_request):
        """The HTML path and the structured path must expose the same page."""
        from repro.core.parser import parse_serp_html

        for term, nonce in (("School", 11), ("Starbucks", 12), ("Gay Marriage", 13)):
            request = make_request(term, gps=CLEVELAND, nonce=nonce)
            structured = engine.serve_page(request)
            parsed = parse_serp_html(engine.handle(request).html)
            assert parsed.urls() == structured.links()
            assert parsed.suggestions == structured.suggestions

    def test_render_is_pure(self, engine, make_request):
        page = engine.serve_page(make_request("School", gps=CLEVELAND, nonce=9))
        assert render_page(page) == render_page(page)


class TestWorldSubstreamIndependence:
    def test_poi_layout_independent_of_news_pool(self):
        """Re-rolling one subsystem must not move another (seed fan-out)."""
        from repro.queries.corpus import build_corpus
        from repro.web.news import NewsPool
        from repro.web.world import WebWorld

        corpus = build_corpus()
        query = corpus.get("School")
        world = WebWorld(4242)
        before = [
            str(d.url)
            for d in world.poi_candidates(query, CLEVELAND, radius_miles=3.0)
        ]
        # Using the news pool extensively...
        for day in range(10):
            world.news.articles_for("Gun Control", day, state="Ohio")
        after = [
            str(d.url)
            for d in world.poi_candidates(query, CLEVELAND, radius_miles=3.0)
        ]
        assert before == after
        # ...and a different news seed would not change POI placement:
        assert NewsPool(1).articles_for("Gun Control", 5) != NewsPool(2).articles_for(
            "Gun Control", 5
        ) or True  # (the pools may coincide by chance on a thin day)

    def test_different_world_seeds_move_pois_but_not_universal_slates(self):
        from repro.queries.corpus import build_corpus
        from repro.web.world import WebWorld

        corpus = build_corpus()
        query = corpus.get("School")
        a = WebWorld(1)
        b = WebWorld(2)
        assert [str(d.url) for d in a.universal_candidates(query)] == [
            str(d.url) for d in b.universal_candidates(query)
        ]
        assert [
            str(d.url) for d in a.poi_candidates(query, CLEVELAND, radius_miles=3.0)
        ] != [
            str(d.url) for d in b.poi_candidates(query, CLEVELAND, radius_miles=3.0)
        ]


class TestStudySeedFanout:
    def test_study_seed_changes_engine_noise_but_not_geography_constants(self):
        from repro.geo.cuyahoga import cuyahoga_voting_districts
        from repro.geo.ohio import ohio_county

        # Fixed-world constants are independent of any study seed.
        assert ohio_county("Noble").center == ohio_county("Noble").center
        a = cuyahoga_voting_districts(10)
        b = cuyahoga_voting_districts(10)
        assert [d.center for d in a] == [d.center for d in b]

    def test_dialect_changes_engine_seed_stream(self):
        """Two engines over the same world draw independent noise."""
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study
        from repro.engine.dialect import BINGO
        from repro.queries.corpus import build_corpus

        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("School")], seed=77, days=1, locations_per_granularity=3
        )
        google_study = Study(config)
        bingo_study = Study(
            config.with_overrides(dialect=BINGO)
        )
        assert google_study.engine.seed != bingo_study.engine.seed
        # Same world underneath.
        assert google_study.world.seed == bingo_study.world.seed
