"""Robustness tests: the parser against malformed and adversarial HTML.

A crawler's parser sees whatever the network hands it — truncated
pages, error pages, junk.  It must either parse or raise
:class:`SerpParseError`; it must never crash with an unrelated
exception or silently return garbage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import SerpParseError, parse_serp_html
from repro.engine.render import render_page
from repro.engine.serp import CardType, SerpCard, SerpPage
from repro.geo.coords import LatLon
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.urls import Url


def _page_with_titles(titles):
    cards = [
        SerpCard(
            CardType.ORGANIC,
            [
                Document(
                    url=Url(host=f"site{i}.example.com"),
                    title=title,
                    kind=DocKind.ORGANIC,
                    scope=GeoScope.NATIONAL,
                    base_score=5.0,
                )
            ],
        )
        for i, title in enumerate(titles)
    ]
    return SerpPage(
        query_text="q",
        cards=cards,
        reported_location=LatLon(41.0, -81.0),
        datacenter="dc00",
        day=0,
    )


class TestMalformedInput:
    @pytest.mark.parametrize(
        "junk",
        [
            "",
            "plain text, no markup",
            "<html><body></body></html>",
            "<div id='rso'",  # truncated mid-tag
            "<!DOCTYPE html><html>" + "<div>" * 2000,
            "\x00\x01\x02 binary-ish",
            "<rso></rso>",  # id as tag, not attribute
        ],
    )
    def test_junk_raises_parse_error(self, junk):
        with pytest.raises(SerpParseError):
            parse_serp_html(junk)

    def test_truncated_serp_parses_partially(self, engine, make_request):
        from repro.geo.coords import LatLon

        html = engine.handle(
            make_request("School", gps=LatLon(41.43, -81.67))
        ).html
        truncated = html[: len(html) // 2]
        # Either a partial parse (container opened) or a clean error.
        try:
            parsed = parse_serp_html(truncated)
        except SerpParseError:
            return
        assert parsed.results is not None

    def test_nested_junk_inside_cards_ignored(self):
        html = (
            "<html><body><div id='rso'>"
            "<div class='card card-organic'>"
            "<b><i>decoration</i></b>"
            "<a class='result-link' href='https://a.example.com/'>t</a>"
            "<table><tr><td>junk</td></tr></table>"
            "</div></div></body></html>"
        )
        parsed = parse_serp_html(html)
        assert parsed.urls() == ["https://a.example.com/"]

    def test_link_outside_any_card_ignored(self):
        html = (
            "<html><body><div id='rso'>"
            "<a class='result-link' href='https://stray.example.com/'>stray</a>"
            "<div class='card card-organic'>"
            "<a class='result-link' href='https://a.example.com/'>t</a>"
            "</div></div></body></html>"
        )
        parsed = parse_serp_html(html)
        assert parsed.urls() == ["https://a.example.com/"]

    def test_second_link_in_organic_card_ignored(self):
        # The paper's rule: first link of each normal card.
        html = (
            "<html><body><div id='rso'>"
            "<div class='card card-organic'>"
            "<a class='result-link' href='https://first.example.com/'>1</a>"
            "<a class='result-link' href='https://second.example.com/'>2</a>"
            "</div></div></body></html>"
        )
        parsed = parse_serp_html(html)
        assert parsed.urls() == ["https://first.example.com/"]


class TestAdversarialTitles:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.text(min_size=1, max_size=40).filter(str.strip),
            min_size=1,
            max_size=8,
        )
    )
    def test_arbitrary_titles_round_trip(self, titles):
        page = _page_with_titles(titles)
        parsed = parse_serp_html(render_page(page))
        assert parsed.urls() == page.links()

    def test_html_injection_in_title_does_not_forge_results(self):
        evil = '<a class="result-link" href="https://evil.example.com/">x</a>'
        page = _page_with_titles([evil])
        parsed = parse_serp_html(render_page(page))
        # The injected markup must arrive escaped, not as a result.
        assert parsed.urls() == ["https://site0.example.com/"]

    def test_injection_in_query_does_not_break_page(self):
        page = SerpPage(
            query_text='"><script>alert(1)</script>',
            cards=_page_with_titles(["t"]).cards,
            reported_location=LatLon(0, 0),
            datacenter="dc00",
            day=0,
        )
        html = render_page(page)
        assert "<script>" not in html
        parsed = parse_serp_html(html)
        assert len(parsed.urls()) == 1


class TestTruncatedSerp:
    """Truncated pages — the wire cut mid-response — must never parse
    as a quietly-shorter result list; they are either a parse error or
    detectably incomplete, and the runner turns both into a structured
    ``malformed-serp`` :class:`~repro.core.runner.CrawlFailure`."""

    def test_cut_before_footer_is_detected(self):
        html = render_page(_page_with_titles(["a", "b", "c"]))
        cut = html[: html.index("<footer")]
        try:
            parsed = parse_serp_html(cut)
        except SerpParseError:
            return
        assert not parsed.is_complete

    def test_every_truncation_point_before_footer_is_detected(self):
        html = render_page(_page_with_titles(["a", "b", "c", "d"]))
        footer_at = html.index("<footer")
        for offset in range(100, footer_at, max(1, footer_at // 40)):
            cut = html[:offset]
            try:
                parsed = parse_serp_html(cut)
            except SerpParseError:
                continue
            assert not parsed.is_complete, f"undetected truncation at {offset}"

    def test_injected_truncation_becomes_structured_failure(self):
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study
        from repro.faults.plan import FaultPlan
        from repro.queries.corpus import build_corpus

        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("Starbucks")], days=1, locations_per_granularity=1
        ).with_overrides(
            max_retries=0,
            fault_plan=FaultPlan(seed=3, truncation_rate=1.0),
            circuit_breakers=False,
        )
        study = Study(config)
        dataset = study.run()
        assert len(dataset) == 0
        assert len(study.failures) == len(study.treatments)
        assert {failure.kind for failure in study.failures} == {"malformed-serp"}
        assert study.stats.malformed == len(study.failures)
        assert study.fault_stats.unaccounted() == {}

    def test_truncation_is_recovered_by_retries(self):
        from repro.core.experiment import StudyConfig
        from repro.core.runner import Study
        from repro.faults.plan import FaultPlan
        from repro.queries.corpus import build_corpus

        corpus = build_corpus()
        config = StudyConfig.small(
            [corpus.get("Starbucks")], days=1, locations_per_granularity=1
        ).with_overrides(
            max_retries=3,
            fault_plan=FaultPlan(seed=3, truncation_rate=0.3),
            circuit_breakers=False,
        )
        study = Study(config)
        dataset = study.run()
        injected = study.fault_stats.injected.get("malformed-serp", 0)
        assert injected > 0
        recovered = study.fault_stats.absorbed.get("malformed-serp", 0)
        lost = study.fault_stats.terminal.get("malformed-serp", 0)
        assert injected == recovered + lost
        assert len(dataset) + len(study.failures) == len(study.treatments)
