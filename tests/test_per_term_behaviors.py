"""Parametrised per-term behaviour checks across the whole local corpus.

The paper's brand/generic divide is a per-term claim; these tests pin
it term by term against the engine: every brand suppresses the Maps
card, every generic term triggers it, and every term's POI category
resolves.
"""

import pytest

from repro.engine.serp import CardType
from repro.geo.coords import LatLon
from repro.queries.local import LOCAL_BRAND_TERMS, LOCAL_GENERIC_TERMS
from repro.web.pois import category_for_term
from repro.web.urls import slugify

CLEVELAND = LatLon(41.4993, -81.6944)


class TestBrandTermBehaviour:
    @pytest.mark.parametrize("term", LOCAL_BRAND_TERMS)
    def test_brand_rarely_shows_maps(self, engine, make_request, term):
        cards = sum(
            engine.serve_page(
                make_request(term, gps=CLEVELAND, nonce=i)
            ).card_count(CardType.MAPS)
            for i in range(8)
        )
        assert cards <= 1, term

    @pytest.mark.parametrize("term", LOCAL_BRAND_TERMS)
    def test_brand_page_led_by_its_own_domain(self, engine, make_request, term):
        page = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=1))
        slug = slugify(term)
        # Knowledge panel or first organic: the brand's own site leads.
        assert slug in page.links()[0], term

    def test_most_brands_show_outlets_on_page(self, engine, make_request):
        # Outlet density is ~0.08/sq-mi, so a sparse chain can have no
        # outlet near a given point (realistic); but across the brand
        # corpus, most pages carry outlet links.
        with_outlets = 0
        for term in LOCAL_BRAND_TERMS:
            page = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=2))
            slug = slugify(term)
            if any(f"{slug}.example.com/locations/" in u for u in page.links()):
                with_outlets += 1
        assert with_outlets >= len(LOCAL_BRAND_TERMS) * 0.6


class TestGenericTermBehaviour:
    @pytest.mark.parametrize("term", LOCAL_GENERIC_TERMS)
    def test_generic_usually_shows_maps(self, engine, make_request, term):
        cards = sum(
            engine.serve_page(
                make_request(term, gps=CLEVELAND, nonce=i)
            ).card_count(CardType.MAPS)
            for i in range(8)
        )
        assert cards >= 5, term

    @pytest.mark.parametrize("term", LOCAL_GENERIC_TERMS)
    def test_generic_has_registered_poi_category(self, term):
        spec = category_for_term(term, is_brand=False)
        assert spec.name == slugify(term)
        assert spec.density_per_sq_mile > 0

    @pytest.mark.parametrize("term", LOCAL_GENERIC_TERMS)
    def test_generic_page_contains_local_business_results(
        self, engine, make_request, term
    ):
        from repro.web.documents import DocKind

        page = engine.serve_page(make_request(term, gps=CLEVELAND, nonce=3))
        kinds = {
            doc.kind
            for card in page.cards
            for doc in card.documents
        }
        assert DocKind.LOCAL_BUSINESS in kinds or DocKind.MAP_PLACE in kinds, term
