"""Property-based tests (hypothesis) on core data structures/invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import damerau_levenshtein, jaccard_index
from repro.geo.coords import LatLon, destination, haversine_km
from repro.net.ip import IPv4Address, IPv4Subnet
from repro.seeding import derive_seed, stable_unit
from repro.stats.summaries import summarize
from repro.web.grid import GeoGrid

# Strategy helpers --------------------------------------------------------------

urls = st.text(alphabet="abcde", min_size=1, max_size=3)
url_lists = st.lists(urls, max_size=12)
# Keep latitudes away from the poles: the local-grid projection (like
# the study itself) is only meaningful at inhabited latitudes.
lats = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
lons = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestMetricProperties:
    @given(url_lists)
    def test_jaccard_self_is_one(self, items):
        assert jaccard_index(items, items) == 1.0

    @given(url_lists, url_lists)
    def test_jaccard_symmetric_and_bounded(self, a, b):
        assert jaccard_index(a, b) == jaccard_index(b, a)
        assert 0.0 <= jaccard_index(a, b) <= 1.0

    @given(url_lists)
    def test_edit_self_is_zero(self, items):
        assert damerau_levenshtein(items, items) == 0

    @given(url_lists, url_lists)
    def test_edit_symmetric(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(url_lists, url_lists)
    def test_edit_bounded_by_longer(self, a, b):
        assert damerau_levenshtein(a, b) <= max(len(a), len(b))

    @given(url_lists, url_lists)
    def test_edit_at_least_length_difference(self, a, b):
        assert damerau_levenshtein(a, b) >= abs(len(a) - len(b))

    @settings(max_examples=40)
    @given(url_lists, url_lists, url_lists)
    def test_edit_triangle_inequality(self, a, b, c):
        assert damerau_levenshtein(a, c) <= (
            damerau_levenshtein(a, b) + damerau_levenshtein(b, c)
        )

    @given(url_lists, url_lists)
    def test_identical_sets_give_jaccard_one(self, a, b):
        if set(a) == set(b):
            assert jaccard_index(a, b) == 1.0


class TestGeoProperties:
    @given(lats, lons, lats, lons)
    def test_haversine_symmetric_nonnegative(self, lat1, lon1, lat2, lon2):
        a, b = LatLon(lat1, lon1), LatLon(lat2, lon2)
        assert haversine_km(a, b) >= 0
        assert haversine_km(a, b) == haversine_km(b, a)

    @given(lats, lons, st.floats(min_value=0, max_value=359.9),
           st.floats(min_value=0, max_value=500))
    def test_destination_distance_consistent(self, lat, lon, bearing, distance):
        origin = LatLon(lat, lon)
        target = destination(origin, bearing, distance)
        assert haversine_km(origin, target) == (
            __import__("pytest").approx(distance, rel=1e-4, abs=1e-6)
        )

    @given(lats, lons)
    def test_grid_snap_idempotent(self, lat, lon):
        grid = GeoGrid(1.0)
        point = LatLon(lat, lon)
        assert grid.snap(grid.snap(point)) == grid.snap(point)

    @given(lats, lons)
    def test_point_is_inside_its_cell(self, lat, lon):
        grid = GeoGrid(1.0)
        point = LatLon(lat, lon)
        cell = grid.cell_of(point)
        assert cell in grid.cells_within(point, 0.0)

    @given(lats, lons, st.floats(min_value=0.1, max_value=6.0))
    def test_cells_within_contains_center_cell(self, lat, lon, radius):
        grid = GeoGrid(1.0)
        point = LatLon(lat, lon)
        assert grid.cell_of(point) in grid.cells_within(point, radius)


class TestSeedingProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_derive_seed_in_range(self, master, label):
        assert 0 <= derive_seed(master, label) < 2**64

    @given(st.text(max_size=20), st.integers(min_value=0, max_value=10**9))
    def test_stable_unit_in_range(self, label, n):
        assert 0.0 <= stable_unit(label, n) < 1.0

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=10),
           st.text(max_size=10))
    def test_different_labels_rarely_collide(self, master, a, b):
        if a != b:
            # 64-bit collisions are possible but should never appear in
            # a hypothesis run.
            assert derive_seed(master, a) != derive_seed(master, b)


class TestIPv4Properties:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_parse_str_round_trip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address.parse(str(ip)) == ip

    @given(st.integers(min_value=0, max_value=0xFFFFFF00), st.integers(0, 255))
    def test_subnet_membership_consistent(self, base, offset):
        network = IPv4Address(base & 0xFFFFFF00)
        subnet = IPv4Subnet(network, 24)
        member = IPv4Address((network.value & 0xFFFFFF00) | offset)
        assert member in subnet

    @given(st.integers(min_value=0, max_value=32))
    def test_subnet_size(self, prefix):
        subnet = IPv4Subnet(IPv4Address(0), prefix)
        assert subnet.size == 2 ** (32 - prefix)


class TestSummaryProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_mean_within_range(self, values):
        stats = summarize(values)
        assert min(values) - 1e-9 <= stats.mean <= max(values) + 1e-9
        assert stats.std >= 0
        assert stats.count == len(values)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
           st.integers(min_value=1, max_value=20))
    def test_constant_sequence_has_near_zero_std(self, value, count):
        # sum(v * n) / n need not equal v exactly in floating point, so
        # the property holds only to rounding tolerance.
        stats = summarize([value] * count)
        assert stats.std <= abs(value) * 1e-12 + 1e-12
        assert stats.mean == __import__("pytest").approx(value, rel=1e-12, abs=1e-12)
