"""Tests for the additional rank metrics (Kendall tau, RBO, top-k)."""

import pytest

from repro.core.rank_metrics import kendall_tau, rank_biased_overlap, top_k_overlap


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_order(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_single_swap(self):
        # 3 pairs, one discordant: tau = (2 - 1) / 3.
        assert kendall_tau(["a", "b", "c"], ["a", "c", "b"]) == pytest.approx(1 / 3)

    def test_non_conjoint_lists_use_shared_items(self):
        assert kendall_tau(["a", "b", "x"], ["a", "b", "y"]) == 1.0

    def test_fewer_than_two_shared_items(self):
        assert kendall_tau(["a"], ["b"]) == 1.0
        assert kendall_tau([], []) == 1.0

    def test_symmetry(self):
        a = ["a", "b", "c", "d"]
        b = ["b", "d", "a", "c"]
        assert kendall_tau(a, b) == kendall_tau(b, a)

    def test_bounded(self):
        a = ["a", "b", "c", "d", "e"]
        b = ["e", "a", "d", "b", "c"]
        assert -1.0 <= kendall_tau(a, b) <= 1.0


class TestRankBiasedOverlap:
    def test_identical(self):
        assert rank_biased_overlap(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(
            1.0
        )

    def test_disjoint(self):
        assert rank_biased_overlap(["a", "b"], ["x", "y"]) == pytest.approx(0.0, abs=1e-9)

    def test_both_empty(self):
        assert rank_biased_overlap([], []) == 1.0

    def test_one_empty(self):
        assert rank_biased_overlap(["a"], []) == 0.0

    def test_top_weighted(self):
        # Disagreement at the top hurts more than at the bottom.
        base = ["a", "b", "c", "d", "e"]
        swapped_top = ["b", "a", "c", "d", "e"]
        swapped_bottom = ["a", "b", "c", "e", "d"]
        assert rank_biased_overlap(base, swapped_bottom) > rank_biased_overlap(
            base, swapped_top
        )

    def test_symmetry(self):
        a = ["a", "b", "c", "d"]
        b = ["b", "a", "e", "c"]
        assert rank_biased_overlap(a, b) == pytest.approx(rank_biased_overlap(b, a))

    def test_bounded(self):
        a = ["a", "b", "c", "d"]
        b = ["c", "d", "e", "f"]
        assert 0.0 <= rank_biased_overlap(a, b) <= 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            rank_biased_overlap(["a"], ["a"], p=1.0)
        with pytest.raises(ValueError):
            rank_biased_overlap(["a"], ["a"], p=0.0)

    def test_p_controls_depth_weight(self):
        # Lower p concentrates weight at the very top.
        a = ["a", "b", "c", "d", "e", "f"]
        b = ["a", "x", "y", "z", "w", "v"]
        assert rank_biased_overlap(a, b, p=0.5) > rank_biased_overlap(a, b, p=0.95)

    def test_different_lengths(self):
        value = rank_biased_overlap(["a", "b", "c"], ["a", "b"])
        assert 0.0 < value <= 1.0


class TestTopKOverlap:
    def test_identical_top(self):
        assert top_k_overlap(["a", "b", "c", "x"], ["a", "c", "b", "y"], k=3) == 1.0

    def test_disjoint_top(self):
        assert top_k_overlap(["a", "b"], ["x", "y"], k=2) == 0.0

    def test_partial(self):
        assert top_k_overlap(["a", "b", "c"], ["a", "x", "y"], k=3) == pytest.approx(
            1 / 3
        )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_overlap(["a"], ["a"], k=0)

    def test_empty_lists(self):
        assert top_k_overlap([], [], k=3) == 1.0
