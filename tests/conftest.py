"""Shared fixtures.

The expensive fixtures (collected datasets) are session-scoped: the
small study takes a few seconds and is reused by every analysis test.
"""

from __future__ import annotations

import pytest

from repro.core.datastore import SerpDataset
from repro.core.experiment import StudyConfig
from repro.core.runner import Study
from repro.engine import DatacenterCluster, SearchEngine, SearchRequest
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory
from repro.web.world import WebWorld

TEST_SEED = 987654321


@pytest.fixture(scope="session")
def corpus():
    """The full 240-query corpus."""
    return build_corpus()


@pytest.fixture(scope="session")
def small_queries(corpus):
    """A balanced cross-category slice of the corpus."""
    local = corpus.by_category(QueryCategory.LOCAL)
    brands = [q for q in local if q.is_brand][:3]
    generics = [q for q in local if not q.is_brand][:6]
    controversial = corpus.by_category(QueryCategory.CONTROVERSIAL)[:6]
    politicians = corpus.by_category(QueryCategory.POLITICIAN)
    common = [q for q in politicians if q.is_common_name][:2]
    national = [q for q in politicians if q.politician_scope.value == "national"]
    scoped = [q for q in politicians if q not in common and q not in national][:3]
    return brands + generics + controversial + common + national + scoped


@pytest.fixture(scope="session")
def small_config(small_queries):
    """A small but methodologically complete study configuration."""
    return StudyConfig.small(
        small_queries, seed=TEST_SEED, days=2, locations_per_granularity=5
    )


@pytest.fixture(scope="session")
def small_study(small_config):
    """A wired (not yet run) small study."""
    return Study(small_config)


@pytest.fixture(scope="session")
def small_dataset(small_study) -> SerpDataset:
    """The collected dataset of the small study (run once per session)."""
    return small_study.run()


@pytest.fixture(scope="session")
def world():
    """A synthetic web world."""
    return WebWorld(TEST_SEED)


@pytest.fixture()
def engine(world, corpus):
    """A fresh engine (function-scoped: sessions/rate limits are stateful)."""
    cluster = DatacenterCluster()
    geoip = GeoIPDatabase()
    return SearchEngine(world, cluster, geoip, corpus=corpus, seed=TEST_SEED)


@pytest.fixture()
def make_request(engine):
    """Factory for well-formed search requests against ``engine``."""

    def _make(query_text, *, gps=None, nonce=1, t=100.0, cookie=None, ip="192.0.2.10",
              frontend_index=0):
        return SearchRequest(
            query_text=query_text,
            client_ip=IPv4Address.parse(ip),
            frontend_ip=engine.cluster[frontend_index].frontend_ip,
            timestamp_minutes=t,
            gps=gps,
            cookie_id=cookie,
            nonce=nonce,
        )

    return _make
