"""Integration tests of the methodology itself.

Each test answers "why does the paper's design include this control?" by
running the pipeline with the control removed and showing the artefact
it guards against.
"""

import pytest

from repro.core.experiment import StudyConfig
from repro.core.noise import NoiseAnalysis
from repro.core.runner import Study
from repro.queries.corpus import build_corpus

SEED = 24601


def _queries():
    corpus = build_corpus()
    return [
        corpus.get("School"),
        corpus.get("Coffee"),
        corpus.get("Hospital"),
        corpus.get("Starbucks"),
        corpus.get("Gay Marriage"),
        corpus.get("Barack Obama"),
    ]


def _config(**overrides):
    config = StudyConfig.small(
        _queries(), seed=SEED, days=1, locations_per_granularity=5
    )
    return config.with_overrides(**overrides) if overrides else config


class TestDatacenterPinning:
    def test_unpinned_dns_increases_noise(self):
        pinned = NoiseAnalysis(Study(_config()).run())
        unpinned = NoiseAnalysis(Study(_config(pin_datacenter=False)).run())
        assert (
            unpinned.cell("local", "county").edit.mean
            > pinned.cell("local", "county").edit.mean
        )


class TestPairedControls:
    def test_without_noise_floor_local_noise_masquerades_as_personalization(self):
        # The control pair is what lets the paper separate noise from
        # personalization: at county level a naive reading of raw
        # pairwise differences would overstate personalization by the
        # noise amount.
        from repro.core.personalization import PersonalizationAnalysis

        dataset = Study(_config()).run()
        analysis = PersonalizationAnalysis(dataset)
        raw = analysis.cell("local", "county").edit.mean
        net = analysis.net_edit("local", "county")
        noise = analysis.noise.noise_floor_edit("local", "county")
        assert noise > 1.0
        assert net == pytest.approx(raw - noise, abs=1e-9)


class TestDeterminism:
    def test_same_seed_reproduces_the_dataset_bit_for_bit(self):
        a = Study(_config()).run()
        b = Study(_config()).run()
        assert len(a) == len(b)
        for record in a:
            twin = b.get(
                record.query,
                record.granularity,
                record.location_name,
                record.day,
                record.copy_index,
            )
            assert twin is not None
            assert twin.urls == record.urls
            assert twin.type_codes == record.type_codes

    def test_different_seed_changes_results(self):
        a = Study(_config()).run()
        b = Study(
            StudyConfig.small(_queries(), seed=SEED + 1, days=1, locations_per_granularity=5)
        ).run()
        assert any(
            record.urls
            != b.get(
                record.query,
                record.granularity,
                record.location_name,
                record.day,
                record.copy_index,
            ).urls
            for record in a
            if b.get(
                record.query,
                record.granularity,
                record.location_name,
                record.day,
                record.copy_index,
            )
            is not None
        )


class TestSnappingAblation:
    def test_disabling_snapping_removes_county_clusters(self):
        from repro.core.consistency import ConsistencyAnalysis

        snapped_ds = Study(_config()).run()
        unsnapped_config = _config().with_overrides(
            calibration=_config().calibration.with_overrides(snap_to_grid=False)
        )
        unsnapped_ds = Study(unsnapped_config).run()

        snapped_groups = ConsistencyAnalysis(snapped_ds).cluster_groups(
            "county", margin=1.0
        )
        unsnapped_groups = ConsistencyAnalysis(unsnapped_ds).cluster_groups(
            "county", margin=1.0
        )
        # With snapping, districts sharing a snap cell receive
        # near-identical results (clusters at the noise floor); without
        # it, every distinct coordinate differs.
        assert sum(map(len, snapped_groups)) >= sum(map(len, unsnapped_groups))

    def test_maps_gate_ablation_collapses_maps_noise(self):
        from repro.core.parser import ResultType

        deterministic_maps = _config().with_overrides(
            calibration=_config().calibration.with_overrides(maps_prob_generic=1.0)
        )
        noise = NoiseAnalysis(Study(deterministic_maps).run())
        share = noise.cell("local", "county").type_share(ResultType.MAPS)
        baseline_share = NoiseAnalysis(Study(_config()).run()).cell(
            "local", "county"
        ).type_share(ResultType.MAPS)
        # With the gate always open, Maps presence cannot flicker between
        # treatment and control; only content jitter remains.
        assert share < baseline_share

    def test_zero_jitter_makes_pages_deterministic(self):
        quiet = _config().with_overrides(
            calibration=_config().calibration.with_overrides(
                ab_jitter_local=0.0,
                ab_jitter_national=0.0,
                maps_prob_generic=1.0,
                maps_prob_brand=0.0,
            )
        )
        noise = NoiseAnalysis(Study(quiet).run())
        for category in ("local", "controversial", "politician"):
            assert noise.cell(category, "county").edit.mean == 0.0
            assert noise.cell(category, "county").jaccard.mean == 1.0
