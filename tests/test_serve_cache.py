"""SERP-cache correctness: TTL on day rollover, LRU order, cell sharing."""

from __future__ import annotations

import pytest

from repro.engine.request import ResponseStatus, SearchRequest, SearchResponse
from repro.geo.coords import LatLon
from repro.net.ip import IPv4Address
from repro.serve.cache import MINUTES_PER_DAY, SerpCache

CLEVELAND = LatLon(41.4993, -81.6944)


def _response(tag: str) -> SearchResponse:
    return SearchResponse(status=ResponseStatus.OK, html=f"<html>{tag}</html>")


class TestCacheKeys:
    def test_same_cell_shares_a_key(self):
        cache = SerpCache(16, cell_miles=1.7)
        # Two fixes ~100 ft apart land in one 1.7-mile snap cell.
        a = cache.key_for("google-like", "school", CLEVELAND, day=0)
        b = cache.key_for(
            "google-like",
            "school",
            LatLon(CLEVELAND.lat + 0.0003, CLEVELAND.lon + 0.0003),
            day=0,
        )
        assert a == b

    def test_different_cells_do_not_share(self):
        cache = SerpCache(16, cell_miles=1.7)
        a = cache.key_for("google-like", "school", CLEVELAND, day=0)
        far = LatLon(CLEVELAND.lat + 0.1, CLEVELAND.lon)  # ~7 miles north
        b = cache.key_for("google-like", "school", far, day=0)
        assert a != b

    def test_key_dimensions(self):
        cache = SerpCache(16)
        base = cache.key_for("google-like", "school", CLEVELAND, day=0)
        assert cache.key_for("bingo", "school", CLEVELAND, day=0) != base
        assert cache.key_for("google-like", "library", CLEVELAND, day=0) != base
        assert cache.key_for("google-like", "school", CLEVELAND, day=1) != base
        assert cache.key_for("google-like", "school", CLEVELAND, day=0, page=1) != base
        assert (
            cache.key_for("google-like", "school", CLEVELAND, day=0, datacenter="dc01")
            != base
        )

    def test_slug_normalises_case_and_whitespace(self):
        cache = SerpCache(16)
        assert cache.key_for("g", "Gay  Marriage", CLEVELAND, day=0) == cache.key_for(
            "g", "gay marriage ", CLEVELAND, day=0
        )

    def test_canonical_location_is_cell_center(self):
        cache = SerpCache(16, cell_miles=1.7)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        center = cache.canonical_location(key)
        assert cache.grid.cell_of(center) == cache.grid.cell_of(CLEVELAND)
        # Any fix in the cell canonicalises to the same point.
        nearby = LatLon(CLEVELAND.lat + 0.0003, CLEVELAND.lon)
        assert cache.canonical_location(
            cache.key_for("g", "school", nearby, day=0)
        ) == center


class TestTTL:
    def test_hit_within_day(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(key, _response("day0"), now_minutes=100.0)
        hit = cache.get(key, now_minutes=MINUTES_PER_DAY - 1.0)
        assert hit is not None and "day0" in hit.html

    def test_expires_on_day_rollover(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(key, _response("day0"), now_minutes=100.0)
        assert cache.get(key, now_minutes=float(MINUTES_PER_DAY)) is None
        assert cache.stats.cache_expirations == 1
        assert len(cache) == 0

    def test_stale_put_is_dropped(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        # A day-0 page computed after day 0 ended must not be stored.
        cache.put(key, _response("late"), now_minutes=float(MINUTES_PER_DAY) + 5.0)
        assert len(cache) == 0

    def test_insert_sweeps_expired_entries(self):
        cache = SerpCache(16)
        old = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(old, _response("old"), now_minutes=10.0)
        new = cache.key_for("g", "school", CLEVELAND, day=1)
        cache.put(new, _response("new"), now_minutes=float(MINUTES_PER_DAY) + 10.0)
        assert old not in cache
        assert new in cache


class TestLRU:
    def test_eviction_order(self):
        cache = SerpCache(2)
        a = cache.key_for("g", "a", CLEVELAND, day=0)
        b = cache.key_for("g", "b", CLEVELAND, day=0)
        c = cache.key_for("g", "c", CLEVELAND, day=0)
        cache.put(a, _response("a"), 0.0)
        cache.put(b, _response("b"), 0.0)
        assert cache.get(a, 1.0) is not None  # refresh a; b is now LRU
        cache.put(c, _response("c"), 2.0)
        assert b not in cache
        assert a in cache and c in cache
        assert cache.stats.cache_evictions == 1

    def test_put_refreshes_recency(self):
        cache = SerpCache(2)
        a = cache.key_for("g", "a", CLEVELAND, day=0)
        b = cache.key_for("g", "b", CLEVELAND, day=0)
        cache.put(a, _response("a"), 0.0)
        cache.put(b, _response("b"), 0.0)
        cache.put(a, _response("a2"), 1.0)  # re-insert: a newest again
        c = cache.key_for("g", "c", CLEVELAND, day=0)
        cache.put(c, _response("c"), 2.0)
        assert b not in cache and a in cache

    def test_capacity_zero_disables(self):
        cache = SerpCache(0)
        key = cache.key_for("g", "a", CLEVELAND, day=0)
        cache.put(key, _response("a"), 0.0)
        assert len(cache) == 0
        assert cache.get(key, 0.0) is None
        assert cache.stats.cache_hits == 0
        assert cache.stats.cache_misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SerpCache(-1)


class TestStaleStore:
    def test_expired_entries_are_retired_not_discarded(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(key, _response("day0"), now_minutes=100.0)
        assert cache.get(key, now_minutes=float(MINUTES_PER_DAY)) is None
        # The day-1 key for the same query/cell finds the day-0 page.
        tomorrow = cache.key_for("g", "school", CLEVELAND, day=1)
        stale = cache.get_stale(tomorrow)
        assert stale is not None and "day0" in stale.html

    def test_sweep_retires_too(self):
        cache = SerpCache(16)
        old = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(old, _response("old"), now_minutes=10.0)
        other = cache.key_for("g", "jobs", CLEVELAND, day=1)
        cache.put(other, _response("new"), now_minutes=float(MINUTES_PER_DAY) + 10.0)
        assert cache.get_stale(old) is not None

    def test_newest_expiry_wins_per_dayless_key(self):
        cache = SerpCache(16)
        for day in (0, 1):
            key = cache.key_for("g", "school", CLEVELAND, day=day)
            cache.put(key, _response(f"day{day}"), now_minutes=day * MINUTES_PER_DAY + 1.0)
            assert cache.get(key, now_minutes=float((day + 1) * MINUTES_PER_DAY)) is None
        stale = cache.get_stale(cache.key_for("g", "school", CLEVELAND, day=2))
        assert stale is not None and "day1" in stale.html

    def test_stale_store_is_bounded_by_capacity(self):
        cache = SerpCache(2)
        for name in ("a", "b", "c"):
            key = cache.key_for("g", name, CLEVELAND, day=0)
            cache.put(key, _response(name), now_minutes=1.0)
            cache.get(key, now_minutes=float(MINUTES_PER_DAY))  # expire + retire
        assert len(cache._stale) == 2
        assert cache.get_stale(cache.key_for("g", "a", CLEVELAND, day=1)) is None

    def test_no_inventory_returns_none(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        assert cache.get_stale(key) is None

    def test_clear_drops_stale_inventory(self):
        cache = SerpCache(16)
        key = cache.key_for("g", "school", CLEVELAND, day=0)
        cache.put(key, _response("day0"), now_minutes=1.0)
        cache.get(key, now_minutes=float(MINUTES_PER_DAY))
        cache.clear()
        assert cache.get_stale(key) is None


class TestStatsCounters:
    def test_hit_miss_accounting(self):
        cache = SerpCache(4)
        key = cache.key_for("g", "a", CLEVELAND, day=0)
        assert cache.get(key, 0.0) is None
        cache.put(key, _response("a"), 0.0)
        assert cache.get(key, 1.0) is not None
        assert cache.stats.cache_misses == 1
        assert cache.stats.cache_hits == 1
        assert cache.stats.hit_rate == 0.5


class TestGatewayCacheBehaviour:
    """Cache semantics through the full gateway path."""

    @pytest.fixture(scope="class")
    def serving(self):
        from repro.engine.datacenters import DatacenterCluster
        from repro.net.geoip import GeoIPDatabase
        from repro.queries.corpus import build_corpus
        from repro.serve.gateway import Gateway, build_replicas
        from repro.web.world import WebWorld

        world = WebWorld(11)
        cluster = DatacenterCluster()
        geoip = GeoIPDatabase()
        corpus = build_corpus()
        replicas = build_replicas(world, cluster, geoip, corpus=corpus, seed=11)
        return cluster, replicas, geoip

    def _gateway(self, serving, cache_size):
        from repro.serve.gateway import Gateway

        cluster, replicas, geoip = serving
        return Gateway(replicas, geoip, cache_size=cache_size)

    def _request(self, serving, gps, minute, nonce):
        cluster, _, _ = serving
        return SearchRequest(
            query_text="School",
            client_ip=IPv4Address.parse("100.64.0.1"),
            frontend_ip=cluster[0].frontend_ip,
            timestamp_minutes=minute,
            gps=gps,
            nonce=nonce,
        )

    def test_same_cell_requests_share_entry_and_bytes(self, serving):
        gateway = self._gateway(serving, cache_size=64)
        near = LatLon(CLEVELAND.lat + 0.0003, CLEVELAND.lon)
        first = gateway.submit(self._request(serving, CLEVELAND, 0.0, nonce=1))
        second = gateway.submit(self._request(serving, near, 1.0, nonce=2))
        assert not first.cache_hit and second.cache_hit
        assert second.served_by == "cache"
        # Bit-identical despite different nonces and raw coordinates:
        # the gateway canonicalised both to the cell's identity.
        assert first.response.html == second.response.html

    def test_different_cells_miss(self, serving):
        gateway = self._gateway(serving, cache_size=64)
        far = LatLon(CLEVELAND.lat + 0.1, CLEVELAND.lon)
        gateway.submit(self._request(serving, CLEVELAND, 0.0, nonce=1))
        result = gateway.submit(self._request(serving, far, 1.0, nonce=2))
        assert not result.cache_hit
        assert gateway.stats.cache_misses == 2

    def test_day_rollover_expires_through_gateway(self, serving):
        gateway = self._gateway(serving, cache_size=64)
        gateway.submit(self._request(serving, CLEVELAND, 10.0, nonce=1))
        rolled = gateway.submit(
            self._request(serving, CLEVELAND, float(MINUTES_PER_DAY) + 10.0, nonce=2)
        )
        assert not rolled.cache_hit
        assert gateway.stats.cache_expirations >= 1

    def test_cookied_requests_bypass(self, serving):
        gateway = self._gateway(serving, cache_size=64)
        cluster, _, _ = serving
        request = SearchRequest(
            query_text="School",
            client_ip=IPv4Address.parse("100.64.0.1"),
            frontend_ip=cluster[0].frontend_ip,
            timestamp_minutes=0.0,
            gps=CLEVELAND,
            cookie_id="user#1",
            nonce=1,
        )
        result = gateway.submit(request)
        assert not result.cache_hit
        assert gateway.stats.cache_bypasses == 1
        assert gateway.stats.cache_lookups == 0

    def test_cache_mode_is_deterministic(self, serving):
        gold = self._gateway(serving, cache_size=64)
        cold = self._gateway(serving, cache_size=64)
        request = self._request(serving, CLEVELAND, 0.0, nonce=7)
        assert (
            gold.submit(request).response.html == cold.submit(request).response.html
        )
